"""NVM channel timing: latency, serialization, scheduling, backpressure."""

from repro.common.stats import Stats
from repro.config import MemoryConfig
from repro.engine import Engine
from repro.mem.channel import AccessKind, Channel


def make_channel(**cfg_kw):
    engine = Engine()
    cfg = MemoryConfig(**cfg_kw)
    channel = Channel(engine, cfg, Stats().domain("ch"))
    return engine, cfg, channel


class TestLatency:
    def test_read_completes_after_device_latency(self):
        engine, cfg, channel = make_channel()
        done = []
        channel.read(AccessKind.DATA_READ, 0, 64, lambda: done.append(engine.now))
        engine.run()
        # occupancy (bank-limited) + device latency
        occupancy = max(cfg.line_transfer_cycles,
                        round(cfg.read_cycles / cfg.device_banks))
        assert done == [occupancy + cfg.read_cycles]

    def test_write_persist_time(self):
        engine, cfg, channel = make_channel()
        done = []
        channel.write(AccessKind.DATA_WRITE, 0, 64,
                      lambda: done.append(engine.now))
        engine.run()
        occupancy = max(cfg.line_transfer_cycles,
                        round(cfg.write_cycles / cfg.device_banks))
        assert done == [occupancy + cfg.write_cycles]

    def test_bank_occupancy_caps_write_bandwidth(self):
        """At high latency multipliers, write occupancy grows beyond the
        bus serialization — PCM-like write-bandwidth collapse."""
        _, cfg_low, _ = make_channel(latency_multiplier=1.0)
        _, cfg_high, _ = make_channel(latency_multiplier=40.0)
        occ_low = max(cfg_low.line_transfer_cycles,
                      round(cfg_low.write_cycles / cfg_low.device_banks))
        occ_high = max(cfg_high.line_transfer_cycles,
                       round(cfg_high.write_cycles / cfg_high.device_banks))
        assert occ_low == cfg_low.line_transfer_cycles
        assert occ_high > 10 * occ_low


class TestScheduling:
    def test_reads_have_priority_over_writes(self):
        engine, _, channel = make_channel()
        order = []
        channel.write(AccessKind.DATA_WRITE, 0, 64, lambda: order.append("w"))
        channel.read(AccessKind.DATA_READ, 64, 64, lambda: order.append("r"))
        engine.run()
        # Both were queued before the arbiter ran; the read goes first.
        assert order == ["r", "w"]

    def test_serialization_spaces_requests(self):
        engine, cfg, channel = make_channel()
        times = []
        for i in range(3):
            channel.read(AccessKind.DATA_READ, i * 64, 64,
                         lambda: times.append(engine.now))
        engine.run()
        occupancy = max(cfg.line_transfer_cycles,
                        round(cfg.read_cycles / cfg.device_banks))
        deltas = [b - a for a, b in zip(times, times[1:])]
        assert all(d == occupancy for d in deltas)

    def test_write_drain_watermark_flips_priority(self):
        # Watermark of 2 with 6 queued writes: the channel drains writes
        # before servicing the read, so at least the first write finishes
        # (completes) before the read does despite read priority.
        engine, cfg, channel = make_channel(write_queue_depth=8,
                                            write_drain_watermark=0.25)
        order = []
        for i in range(6):
            channel.write(AccessKind.LOG_WRITE, i * 64, 64,
                          lambda i=i: order.append(f"w{i}"))
        channel.read(AccessKind.DATA_READ, 512, 64, lambda: order.append("r"))
        engine.run()
        assert order.index("w0") < order.index("r")


class TestBackpressure:
    def test_write_queue_full_returns_false(self):
        engine, _, channel = make_channel(write_queue_depth=2)
        assert channel.write(AccessKind.DATA_WRITE, 0, 64)
        assert channel.write(AccessKind.DATA_WRITE, 64, 64)
        assert not channel.write(AccessKind.DATA_WRITE, 128, 64)

    def test_when_write_space_fires_after_drain(self):
        engine, _, channel = make_channel(write_queue_depth=1)
        assert channel.write(AccessKind.DATA_WRITE, 0, 64)
        woken = []
        channel.when_write_space(lambda: woken.append(engine.now))
        engine.run()
        assert woken, "waiter must be woken when the queue drains"

    def test_drop_pending_on_crash(self):
        engine, _, channel = make_channel()
        channel.write(AccessKind.LOG_WRITE, 0, 64)
        channel.read(AccessKind.DATA_READ, 64, 64, lambda: None)
        dropped = channel.drop_pending()
        assert dropped == 2
        assert channel.pending_writes() == 0


class TestPriorityWrites:
    def test_priority_write_jumps_queue(self):
        engine, _, channel = make_channel()
        order = []
        channel.write(AccessKind.LOG_WRITE, 0, 64, lambda: order.append("a"))
        channel.write(AccessKind.LOG_WRITE, 64, 64, lambda: order.append("b"))
        channel.write(AccessKind.LOG_WRITE, 128, 64,
                      lambda: order.append("p"), priority=True)
        engine.run()
        # "a" may already be issued, but "p" must beat "b".
        assert order.index("p") < order.index("b")
