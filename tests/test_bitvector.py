"""Unit and property tests for the LogM bit vector."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.bitvector import BitVector


class TestBasics:
    def test_starts_clear(self):
        vec = BitVector(256)
        assert not vec.any()
        assert vec.popcount() == 0

    def test_set_and_test(self):
        vec = BitVector(64)
        vec.set(0)
        vec.set(63)
        assert vec.test(0) and vec.test(63)
        assert not vec.test(32)

    def test_getitem(self):
        vec = BitVector(8)
        vec.set(3)
        assert vec[3] and not vec[4]

    def test_clear_bit(self):
        vec = BitVector(8)
        vec.set(5)
        vec.clear(5)
        assert not vec.test(5)

    def test_clear_all_is_single_shot(self):
        vec = BitVector(256)
        for i in (0, 100, 255):
            vec.set(i)
        vec.clear_all()
        assert not vec.any()

    def test_out_of_range_raises(self):
        vec = BitVector(8)
        with pytest.raises(IndexError):
            vec.set(8)
        with pytest.raises(IndexError):
            vec.test(-1)

    def test_bad_width_raises(self):
        with pytest.raises(ValueError):
            BitVector(0)

    def test_value_too_wide_raises(self):
        with pytest.raises(ValueError):
            BitVector(4, value=16)


class TestSearch:
    def test_find_first_zero_empty(self):
        assert BitVector(8).find_first_zero() == 0

    def test_find_first_zero_skips_set_bits(self):
        vec = BitVector(8)
        vec.set(0)
        vec.set(1)
        assert vec.find_first_zero() == 2

    def test_find_first_zero_full(self):
        vec = BitVector(4, value=0xF)
        assert vec.find_first_zero() is None

    def test_find_first_one(self):
        vec = BitVector(16)
        assert vec.find_first_one() is None
        vec.set(9)
        assert vec.find_first_one() == 9

    def test_iter_ones_ascending(self):
        vec = BitVector(32)
        for i in (30, 2, 17):
            vec.set(i)
        assert list(vec.iter_ones()) == [2, 17, 30]


class TestCombination:
    def test_nor_all_derives_free_list(self):
        a = BitVector(8)
        b = BitVector(8)
        a.set(0)
        b.set(3)
        free = BitVector.nor_all([a, b], 8)
        assert not free.test(0) and not free.test(3)
        assert free.test(1) and free.test(7)
        assert free.popcount() == 6

    def test_nor_all_empty_is_all_ones(self):
        free = BitVector.nor_all([], 8)
        assert free.popcount() == 8

    def test_nor_all_width_mismatch(self):
        with pytest.raises(ValueError):
            BitVector.nor_all([BitVector(8), BitVector(16)], 8)

    def test_complement(self):
        vec = BitVector(4, value=0b0101)
        assert vec.complement().value() == 0b1010

    def test_equality_and_copy(self):
        vec = BitVector(16, value=0xBEEF & 0xFFFF)
        other = vec.copy()
        assert vec == other
        other.clear(0)
        assert vec != other


class TestSerialization:
    def test_roundtrip_simple(self):
        vec = BitVector(256)
        vec.set(200)
        back = BitVector.from_bytes(256, vec.to_bytes())
        assert back == vec

    @given(st.integers(min_value=1, max_value=512), st.data())
    def test_roundtrip_property(self, width, data):
        value = data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
        vec = BitVector(width, value)
        assert BitVector.from_bytes(width, vec.to_bytes()) == vec

    @given(st.integers(min_value=1, max_value=256), st.data())
    def test_popcount_matches_iter_ones(self, width, data):
        value = data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
        vec = BitVector(width, value)
        assert vec.popcount() == len(list(vec.iter_ones()))

    @given(st.integers(min_value=1, max_value=128), st.data())
    def test_complement_involution(self, width, data):
        value = data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
        vec = BitVector(width, value)
        assert vec.complement().complement() == vec
