"""Litmus subsystem: DSL, compiler, explorer, and detection power.

The headline assertions mirror the subsystem's contract: forbidden
outcomes are unreachable across the crash grid on every design with a
recovery story, and the checker provably *can* see violations — the
unlogged baseline reaches a forbidden state on the widest-window
catalog test, and a spec that wrongly expects correctness of that
baseline FAILs.
"""

import pytest

from repro.common.errors import WorkloadError
from repro.config import Design
from repro.harness.campaign import Campaign
from repro.litmus import (CATALOG, LitmusError, LitmusSpec, begin, br_ne,
                          catalog_by_name, commit, compile_condition, compute,
                          explore, fill, loadr, store)
from repro.litmus.explorer import (LitmusPoint, crash_cycles_for,
                                   execute_litmus_point)
from repro.litmus.spec import flush, load, lock, unlock


def tiny_spec(**overrides) -> LitmusSpec:
    base = dict(
        name="tiny",
        description="two-store atomicity",
        vars={"A": 0, "B": 1},
        cores=[[begin(), store("A", 1), store("B", 1), commit()]],
        forbidden=["A != B"],
    )
    base.update(overrides)
    return LitmusSpec(**base)


class TestConditionCompiler:
    def test_basic_comparisons(self):
        fn = compile_condition("A == 1 and B != 2", ["A", "B"])
        assert fn({"A": 1, "B": 0})
        assert not fn({"A": 0, "B": 0})

    def test_membership_and_arithmetic(self):
        fn = compile_condition("(A + B) not in (0, 2)", ["A", "B"])
        assert fn({"A": 1, "B": 0})
        assert not fn({"A": 1, "B": 1})

    @pytest.mark.parametrize("expr", [
        "__import__('os')",
        "A.__class__",
        "(lambda: 1)()",
        "A[0]",
        "open('x')",
        "'s' == A",
    ])
    def test_rejects_dangerous_constructs(self, expr):
        with pytest.raises(LitmusError):
            compile_condition(expr, ["A"])

    def test_rejects_unknown_variable(self):
        with pytest.raises(LitmusError, match="unknown variable"):
            compile_condition("C == 1", ["A", "B"])

    def test_rejects_syntax_error(self):
        with pytest.raises(LitmusError, match="bad condition"):
            compile_condition("A ==", ["A"])


class TestSpecValidation:
    def test_valid_spec_roundtrips(self):
        spec = tiny_spec().validate()
        clone = LitmusSpec.from_dict(spec.to_dict())
        assert clone.to_dict() == spec.to_dict()

    def test_catalog_is_valid_and_unique(self):
        names = [spec.validate().name for spec in CATALOG]
        assert len(names) == len(set(names))
        assert len(names) >= 12

    def test_unbalanced_region_rejected(self):
        with pytest.raises(LitmusError, match="unclosed"):
            tiny_spec(cores=[[begin(), store("A", 1)]]).validate()

    def test_commit_without_begin_rejected(self):
        with pytest.raises(LitmusError, match="commit without begin"):
            tiny_spec(cores=[[commit()]]).validate()

    def test_unknown_var_rejected(self):
        with pytest.raises(LitmusError, match="unknown var"):
            tiny_spec(cores=[[begin(), store("Z", 1), commit()]]).validate()

    def test_shared_line_rejected(self):
        with pytest.raises(LitmusError, match="share a line"):
            tiny_spec(vars={"A": 0, "B": 0}).validate()

    def test_needs_postcondition(self):
        with pytest.raises(LitmusError, match="postcondition"):
            tiny_spec(forbidden=[], allowed=[]).validate()

    def test_txn_writes_extraction(self):
        spec = LitmusSpec(
            name="w", description="", vars={"A": 0, "B": 1},
            cores=[[begin(), store("A", 1), commit(),
                    begin(), fill("A", 7, 2), commit()]],
            forbidden=["A != B"],
        ).validate()
        writes = spec.txn_writes()
        assert writes[0][0] == [("A", 1)]
        # fill covers both placed lines.
        assert sorted(writes[0][1]) == [("A", 7), ("B", 7)]

    def test_span_includes_fill_tail(self):
        spec = LitmusSpec(
            name="s", description="", vars={"A": 3},
            cores=[[begin(), fill("A", 1, 4), commit()]],
            forbidden=["A == 2"],
        ).validate()
        assert spec.span_lines == 7

    def test_nested_begin_rejected(self):
        # Regression: begin/begin used to validate, then txn_writes
        # silently dropped the outer region's writes.
        with pytest.raises(LitmusError, match="nested atomic region"):
            tiny_spec(cores=[[begin(), store("A", 1),
                              begin(), store("B", 1),
                              commit(), commit()]]).validate()


class TestConditionalOps:
    """loadr/br_ne: validation, static txn_writes resolution, execution."""

    def cond_spec(self, cmp_value: int, **overrides) -> LitmusSpec:
        base = dict(
            name="cond", description="",
            vars={"A": 0, "B": 1},
            cores=[[begin(), store("A", 1), commit(),
                    loadr("A", "r0"), br_ne("r0", cmp_value, 3),
                    begin(), store("B", 1), commit()]],
            forbidden=["B == 1 and A == 0"],
            allowed=["A == 0 and B == 0", "A == 1 and B == 0",
                     "A == 1 and B == 1"],
        )
        base.update(overrides)
        return LitmusSpec(**base)

    def test_branch_on_undefined_register_rejected(self):
        with pytest.raises(LitmusError, match="before any loadr"):
            tiny_spec(cores=[[br_ne("r0", 1, 1), begin(), store("A", 1),
                              commit()]]).validate()

    def test_skip_past_program_end_rejected(self):
        with pytest.raises(LitmusError, match="past the end"):
            tiny_spec(cores=[[loadr("A", "r0"), br_ne("r0", 1, 9),
                              begin(), store("A", 1), commit()]]).validate()

    def test_unbalanced_skip_range_rejected(self):
        # Skipping the begin but not the commit would leave the region
        # machinery unbalanced on the not-taken path.
        with pytest.raises(LitmusError, match="balanced"):
            tiny_spec(cores=[[loadr("A", "r0"), br_ne("r0", 1, 2),
                              begin(), store("A", 1), commit()]]).validate()

    def test_txn_writes_resolves_taken_and_skipped_branches(self):
        taken = self.cond_spec(1).validate().txn_writes()
        assert taken[0] == [[("A", 1)], [("B", 1)]]
        skipped = self.cond_spec(42).validate().txn_writes()
        assert skipped[0] == [[("A", 1)]]

    def test_txn_writes_rejects_cross_core_guard(self):
        spec = LitmusSpec(
            name="xcore", description="",
            vars={"F": 0, "O": 1},
            cores=[[begin(), store("F", 1), commit()],
                   [loadr("F", "r0"), br_ne("r0", 1, 3),
                    begin(), store("O", 1), commit()]],
            forbidden=["O == 2"],
        ).validate()
        with pytest.raises(LitmusError, match="other cores write"):
            spec.txn_writes()

    def test_conditional_executes_taken_arm_only(self):
        cat = catalog_by_name()
        out = execute_litmus_point(LitmusPoint(
            test=cat["conditional-local-skip"].to_dict(),
            design=Design.ATOM_OPT, crash_cycle=None,
        ))
        assert out.error == ""
        # The A == 1 guard takes the B arm and skips the C arm.
        assert out.state == {"A": 1, "B": 1, "C": 0}
        assert out.commits == 2


class TestLitmusWorkload:
    def test_completion_state_matches_golden(self):
        from repro.harness.testbed import build_litmus_system

        spec = tiny_spec(init={"A": 5}).validate()
        system, workload = build_litmus_system(Design.ATOM_OPT, spec)
        workload.setup()
        system.start_threads(workload.threads())
        system.run(max_cycles=1_000_000)
        system.crash()
        system.recover()
        assert workload.commits == 1
        assert workload.durable_state() == {"A": 1, "B": 1}
        workload.verify_durable()

    def test_all_ops_compile_and_run(self):
        from repro.harness.testbed import build_litmus_system

        spec = LitmusSpec(
            name="ops", description="every opcode",
            vars={"A": 0, "B": 1},
            cores=[[store("A", 3), flush("A"), compute(40),
                    lock(2), begin(), load("A"), fill("B", 4, 1),
                    commit(), unlock(2)]],
            forbidden=["B not in (0, 4)"],
        ).validate()
        system, workload = build_litmus_system(Design.ATOM, spec)
        workload.setup()
        system.start_threads(workload.threads())
        system.run(max_cycles=1_000_000)
        system.crash()
        system.recover()
        state = workload.durable_state()
        assert state == {"A": 3, "B": 4}
        assert workload.plain_written == {"A"}
        workload.verify_durable()  # skips the plain-written A

    def test_make_workload_registry_entry(self):
        from repro.harness.testbed import build_system
        from repro.workloads import make_workload
        from repro.workloads.litmus import LitmusWorkload

        system = build_system(Design.ATOM_OPT, num_cores=2)
        workload = make_workload("litmus", system,
                                 program=tiny_spec().to_dict())
        assert type(workload) is LitmusWorkload
        assert workload.threads_count == 1

    def test_unknown_workload_error_mentions_litmus(self):
        from repro.harness.testbed import build_system
        from repro.workloads import make_workload

        system = build_system(Design.ATOM_OPT, num_cores=2)
        with pytest.raises(WorkloadError, match="litmus"):
            make_workload("no-such-workload", system)


class TestExplorerPoints:
    def test_probe_point_runs_to_completion(self):
        out = execute_litmus_point(LitmusPoint(
            test=tiny_spec().to_dict(), design=Design.ATOM_OPT,
            crash_cycle=None,
        ))
        assert out.error == ""
        assert out.commits == 1
        assert out.state == {"A": 1, "B": 1}
        assert out.finish > 0
        assert out.idempotent

    def test_early_crash_recovers_initial_state(self):
        out = execute_litmus_point(LitmusPoint(
            test=tiny_spec().to_dict(), design=Design.ATOM_OPT,
            crash_cycle=60,
        ))
        assert out.error == ""
        assert out.commits == 0
        assert out.state == {"A": 0, "B": 0}

    def test_crash_cycles_grid_is_deterministic(self):
        grid = crash_cycles_for(10_000, 10)
        assert grid == crash_cycles_for(10_000, 10)
        assert len(grid) == 10
        assert all(50 <= c < 10_000 for c in grid)
        assert crash_cycles_for(40, 10) == []

    def test_crash_cycles_cover_both_ends_of_the_run(self):
        # The last cycle holds the commit/truncation window: the grid
        # must reach it, not slice it off.
        grid = crash_cycles_for(5_000, 4)
        assert grid[0] == 50
        assert grid[-1] == 4_999
        short = crash_cycles_for(155, 100)
        assert short[0] == 50 and short[-1] == 154
        assert len(short) <= 100
        assert crash_cycles_for(51, 5) == [50]

    def test_crash_cycles_single_point_still_reaches_last_cycle(self):
        # Regression: points=1 used to collapse to [start] and never
        # sample the commit/truncation window at finish-1 the docstring
        # promises.  Both endpoints are non-negotiable.
        assert crash_cycles_for(5_000, 1) == [50, 4_999]
        for points in (1, 2, 3, 7):
            grid = crash_cycles_for(700, points)
            assert grid[0] == 50 and grid[-1] == 699, points
            assert grid == sorted(set(grid))


class TestExploration:
    """End-to-end verdicts on a trimmed (test x design) grid."""

    def test_real_designs_pass_and_baseline_detects(self):
        cat = catalog_by_name()
        tests = [cat["dirty-eviction-before-commit"], cat["atomicity-pair"]]
        report = explore(
            Campaign(jobs=1), tests=tests,
            designs=[Design.ATOM_OPT, Design.REDO, Design.NON_ATOMIC],
            points=12,
        )
        assert report.failures == []
        by_key = {(c.test, c.design): c for c in report.cells}
        for test in ("dirty-eviction-before-commit", "atomicity-pair"):
            for design in ("atom-opt", "redo"):
                cell = by_key[(test, design)]
                assert cell.status == "ok", (test, design)
                assert cell.forbidden_points == 0
        # The checker provably detects violations: the unlogged baseline
        # reaches a forbidden (partial) state through the mid-transaction
        # dirty-eviction window.
        control = by_key[("dirty-eviction-before-commit", "non-atomic")]
        assert control.status == "detected"
        assert control.forbidden_points > 0
        assert len(control.outcomes) > 2  # partial states, deduped by digest

    def test_unexpected_violation_fails_the_cell(self):
        cat = catalog_by_name()
        broken = LitmusSpec.from_dict(
            {**cat["dirty-eviction-before-commit"].to_dict(),
             "name": "eviction-no-expectation", "expect_violation": []}
        )
        report = explore(
            Campaign(jobs=1), tests=[broken],
            designs=[Design.NON_ATOMIC], points=12,
        )
        assert len(report.failures) == 1
        assert report.cells[0].status == "FAIL"
        assert "FAIL" in report.render()

    def test_unlisted_state_counts_against_exhaustive_allow_list(self):
        # Exhaustive allow-list that wrongly omits the committed state:
        # the probe point's recovered state must surface as unlisted.
        spec = tiny_spec(
            name="unlisted", forbidden=[],
            allowed=["A == 0 and B == 0"],
        )
        report = explore(
            Campaign(jobs=1), tests=[spec],
            designs=[Design.ATOM_OPT], points=2,
        )
        cell = report.cells[0]
        assert cell.unlisted_points > 0
        assert cell.status == "FAIL"

    def test_outcomes_roundtrip_through_cache_payloads(self):
        from repro.litmus.explorer import (_outcome_from_dict,
                                           _outcome_to_dict)

        out = execute_litmus_point(LitmusPoint(
            test=tiny_spec().to_dict(), design=Design.BASE,
            crash_cycle=400,
        ))
        clone = _outcome_from_dict(_outcome_to_dict(out))
        assert clone == out

    def test_json_artifact_shape(self):
        report = explore(
            Campaign(jobs=1), tests=[tiny_spec()],
            designs=[Design.ATOM_OPT], points=3,
        )
        payload = report.to_json()
        assert payload["summary"]["cells"] == 1
        cell = payload["cells"][0]
        assert cell["test"] == "tiny"
        assert cell["status"] in ("ok", "detected", "vacuous", "FAIL")
        for outcome in cell["outcomes"]:
            assert set(outcome) >= {"digest", "state", "points",
                                    "forbidden", "unlisted"}
        assert set(payload["coverage"]) >= {"flush-loop", "posted-log-drain",
                                            "backend-apply", "adr-drain"}
        assert "window_hits" in cell

    def test_inapplicable_fault_model_is_an_error_not_a_silent_drop(self):
        # Regression: a requested fault model no selected design could
        # host used to vanish from the verdict table without a trace.
        from repro.common.errors import ConfigError
        from repro.faults.models import TornLogWrite

        with pytest.raises(ConfigError, match="applies to none"):
            explore(Campaign(jobs=1), tests=[tiny_spec()],
                    designs=[Design.NON_ATOMIC], points=2,
                    faults=[TornLogWrite()])


class TestCrashWindowCoverage:
    def test_crash_points_record_their_window(self):
        cat = catalog_by_name()
        report = explore(
            Campaign(jobs=1), tests=[cat["atomicity-pair"]],
            designs=[Design.ATOM_OPT], points=10,
        )
        coverage = report.window_coverage
        # The two-store transaction must at least be caught mid-flush
        # or draining posted log writes somewhere on a 10-point grid.
        assert sum(coverage.values()) > 0
        assert coverage["flush-loop"] + coverage["posted-log-drain"] > 0
        assert "crash-window coverage:" in report.render()

    def test_probe_points_land_in_the_quiescent_window(self):
        out = execute_litmus_point(LitmusPoint(
            test=tiny_spec().to_dict(), design=Design.ATOM_OPT,
            crash_cycle=None,
        ))
        assert out.windows == ["quiescent"]

    def test_densify_bisects_around_transitions(self):
        cat = catalog_by_name()
        coarse = explore(
            Campaign(jobs=1), tests=[cat["atomicity-pair"]],
            designs=[Design.ATOM_OPT], points=4,
        )
        dense = explore(
            Campaign(jobs=1), tests=[cat["atomicity-pair"]],
            designs=[Design.ATOM_OPT], points=4, densify=4,
        )
        assert dense.densify_points > 0
        assert dense.points_total == coarse.points_total + dense.densify_points
        assert dense.failures == []
        # Densification refines the same cell, never invents new ones.
        assert len(dense.cells) == len(coarse.cells) == 1
        assert "bisection points" in dense.render()

    def test_densify_pinpoints_a_transition_cheaper_than_uniform(self):
        from repro.litmus.explorer import _outcome_class

        recorded = []

        class Recording(Campaign):
            def run_litmus(self, points):
                outcomes = super().run_litmus(points)
                recorded.extend(outcomes)
                return outcomes

        report = explore(
            Recording(jobs=1),
            tests=[catalog_by_name()["atomicity-pair"]],
            designs=[Design.ATOM_OPT], points=4, densify=16,
        )
        samples = sorted(
            (o.point.crash_cycle, _outcome_class(o))
            for o in recorded if o.point.crash_cycle is not None
        )
        transition_gaps = [
            later[0] - earlier[0]
            for earlier, later in zip(samples, samples[1:])
            if earlier[1] != later[1]
        ]
        # Bisection localized at least one outcome transition down to
        # adjacent cycles...
        assert transition_gaps and min(transition_gaps) == 1
        # ...with far fewer points than the uniform grid would need for
        # the same resolution (one point per cycle of the span).
        span = samples[-1][0] - samples[0][0]
        assert report.points_total < span


class TestHarnessCli:
    def test_list_flag_prints_everything(self, capsys):
        from repro.harness.__main__ import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for needle in ("fig5a", "litmus", "hash", "tpcc", "atom-opt",
                       "hashtable", "dirty-eviction-before-commit"):
            assert needle in out

    def test_litmus_cli_list_tests(self, capsys):
        from repro.litmus.cli import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "atomicity-pair" in out

    def test_litmus_cli_runs_and_writes_artifact(self, tmp_path, capsys):
        import json

        from repro.litmus.cli import main

        out_path = tmp_path / "verdicts.json"
        code = main([
            "--tests", "atomicity-pair", "--designs", "atom-opt",
            "--points", "3", "--no-cache", "--out", str(out_path),
        ])
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert payload["summary"]["failures"] == 0
        assert "Litmus" in capsys.readouterr().out

    def test_litmus_cli_rejects_unknown_test(self):
        from repro.litmus.cli import main

        with pytest.raises(SystemExit):
            main(["--tests", "not-a-test", "--no-cache"])

    def test_litmus_cli_rejects_inapplicable_fault_model(self, capsys):
        from repro.litmus.cli import main

        with pytest.raises(SystemExit):
            main(["--faults", "torn-log-write",
                  "--designs", "non-atomic", "--no-cache"])
        assert "applies to none" in capsys.readouterr().err

    def test_litmus_gen_cli_list(self, capsys):
        from repro.litmus.cli import main

        assert main(["gen", "--list", "--count", "3", "--seed", "9"]) == 0
        out = capsys.readouterr().out
        assert "gen-s9-000" in out and "gen-s9-002" in out

    def test_litmus_gen_cli_runs_and_writes_coverage(self, tmp_path,
                                                     capsys):
        import json

        from repro.litmus.cli import main

        out_path = tmp_path / "gen.json"
        code = main(["gen", "--count", "2", "--seed", "3",
                     "--points", "3", "--designs", "atom-opt,non-atomic",
                     "--no-cache", "--out", str(out_path)])
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert payload["summary"]["failures"] == 0
        assert set(payload["coverage"]) >= {"flush-loop", "adr-drain"}
        assert "crash-window coverage:" in capsys.readouterr().out
