"""Litmus generator: determinism, soundness by construction, and the
self-judging exhaustive allow-lists.

The headline assertions mirror the generator's contract: the same
``(seed, index)`` always yields the byte-identical program (so batches
key the campaign cache), every generated program passes spec validation
with all stores inside atomic regions and branches guarded only by
core-private variables, and the commit-order golden model judges every
non-crash execution as allowed.
"""

import pytest

from repro.config import Design
from repro.harness.campaign import Campaign
from repro.litmus import (GeneratorParams, LitmusSpec, compile_condition,
                          explore, generate, generate_spec, reachable_states)
from repro.litmus.explorer import LitmusPoint, execute_litmus_point


class TestDeterminism:
    def test_same_seed_same_batch(self):
        a = generate(count=6, seed=4)
        b = generate(count=6, seed=4)
        assert [s.to_dict() for s in a] == [s.to_dict() for s in b]

    def test_specs_depend_only_on_seed_and_index(self):
        batch = generate(count=6, seed=4)
        solo = generate_spec(GeneratorParams(count=6, seed=4), 3)
        assert solo.to_dict() == batch[3].to_dict()

    def test_different_seeds_vary_the_programs(self):
        a = [s.to_dict() for s in generate(count=6, seed=1)]
        b = [s.to_dict() for s in generate(count=6, seed=2)]
        assert a != b

    def test_params_shorthand_rejects_mixed_call(self):
        with pytest.raises(TypeError, match="not both"):
            generate(GeneratorParams(), count=3)


class TestSoundness:
    def test_batch_validates_and_roundtrips(self):
        for spec in generate(count=12, seed=5):
            clone = LitmusSpec.from_dict(spec.to_dict())
            assert clone.to_dict() == spec.to_dict()
            clone.validate()

    def test_every_store_sits_inside_an_atomic_region(self):
        for spec in generate(count=12, seed=6):
            for program in spec.cores:
                depth = 0
                for instr in program:
                    if instr[0] == "begin":
                        depth += 1
                    elif instr[0] == "commit":
                        depth -= 1
                    elif instr[0] in ("store", "fill"):
                        assert depth == 1, (spec.name, instr)

    def test_branches_appear_and_guard_only_private_vars(self):
        conditional = 0
        for spec in generate(count=20, seed=1):
            for cid, program in enumerate(spec.cores):
                for instr in program:
                    if instr[0] == "loadr":
                        conditional += 1
                        # Core-private guard: static branch resolution.
                        assert instr[1] == f"L{cid}", (spec.name, instr)
        assert conditional > 5

    def test_allow_list_is_bounded_and_contains_the_initial_state(self):
        params = GeneratorParams(count=10, seed=7)
        for index in range(params.count):
            spec = generate_spec(params, index)
            assert 1 <= len(spec.allowed) <= params.max_states
            init = {v: spec.init.get(v, 0) for v in spec.vars}
            assert init in reachable_states(spec)

    def test_multiline_txns_expect_the_baseline_violation(self):
        # The detection-control marker must track exactly the programs
        # the unlogged baseline can physically break.
        for spec in generate(count=12, seed=8):
            multiline = any(
                len({var for var, _ in txn}) > 1
                for core in spec.txn_writes() for txn in core
            )
            assert (spec.expect_violation == ["non-atomic"]) == multiline


class TestDifferential:
    def test_completed_runs_recover_into_the_allow_list(self):
        # Non-crash differential check: run each program to completion
        # on a logging design; the recovered state must satisfy one of
        # the generated allowed conditions (the full linearisation).
        for spec in generate(count=4, seed=2):
            out = execute_litmus_point(LitmusPoint(
                test=spec.to_dict(), design=Design.ATOM_OPT,
                crash_cycle=None,
            ))
            assert out.error == "", (spec.name, out.error)
            names = list(spec.vars)
            assert any(
                compile_condition(cond, names)(out.state)
                for cond in spec.allowed
            ), (spec.name, out.state)


class TestGeneratedExploration:
    def test_small_batch_is_green_and_covers_windows(self):
        report = explore(
            Campaign(jobs=1), tests=generate(count=3, seed=1),
            designs=[Design.ATOM_OPT, Design.NON_ATOMIC], points=4,
        )
        assert report.failures == []
        coverage = report.window_coverage
        assert sum(coverage.values()) > 0
        payload = report.to_json()
        assert payload["coverage"] == coverage
        assert all("window_hits" in cell for cell in payload["cells"])
