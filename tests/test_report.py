"""Report helpers: table rendering, gmean and mean/CI edge cases."""

from __future__ import annotations

import math

import pytest

from repro.harness.report import format_markdown, format_table, gmean, mean_ci


class TestFormatTable:
    def test_empty_rows_render_headers_only(self):
        out = format_table(["a", "bb"], [])
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("a")

    def test_column_width_tracks_longest_cell(self):
        out = format_table(["h"], [["xxxxxxxx"], ["y"]])
        header, rule, *_ = out.splitlines()
        assert len(rule) == len("xxxxxxxx")

    def test_nan_renders_as_dash(self):
        assert "-" in format_table(["v"], [[float("nan")]]).splitlines()[-1]

    def test_mixed_types(self):
        out = format_table(["a", "b", "c"], [["s", 7, 1.5]])
        assert "s" in out and "7" in out and "1.50" in out

    def test_large_floats_use_thousands_separators(self):
        assert "1,234,568" in format_table(["v"], [[1234567.9]])


class TestFormatMarkdown:
    def test_shape(self):
        out = format_markdown(["a", "b"], [[1.0, float("nan")]])
        lines = out.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1.00 | - |"

    def test_no_rows(self):
        assert len(format_markdown(["a"], []).splitlines()) == 2


class TestGmean:
    def test_basic(self):
        assert gmean([1.0, 4.0]) == pytest.approx(2.0)

    def test_single_value(self):
        assert gmean([3.0]) == pytest.approx(3.0)

    def test_empty_is_nan(self):
        assert math.isnan(gmean([]))

    def test_zeros_are_filtered_not_fatal(self):
        # A zero would annihilate the product; the paper's figures treat
        # missing/zero points as absent.
        assert gmean([0.0, 2.0, 8.0]) == pytest.approx(4.0)

    def test_all_zeros_is_nan(self):
        assert math.isnan(gmean([0.0, 0.0]))

    def test_negative_values_are_filtered(self):
        assert gmean([-5.0, 2.0, 8.0]) == pytest.approx(4.0)


class TestMeanCi:
    def test_empty_is_nan(self):
        mean, ci = mean_ci([])
        assert math.isnan(mean) and math.isnan(ci)

    def test_single_value_has_zero_width(self):
        assert mean_ci([7.5]) == (7.5, 0.0)

    def test_constant_samples_have_zero_width(self):
        mean, ci = mean_ci([3.0, 3.0, 3.0])
        assert mean == pytest.approx(3.0)
        assert ci == pytest.approx(0.0)

    def test_known_spread(self):
        # Sample std of [1, 3] is sqrt(2); stderr = 1; ci = 1.96.
        mean, ci = mean_ci([1.0, 3.0])
        assert mean == pytest.approx(2.0)
        assert ci == pytest.approx(1.96)

    def test_custom_z(self):
        _, ci = mean_ci([1.0, 3.0], z=1.0)
        assert ci == pytest.approx(1.0)

    def test_accepts_any_iterable(self):
        mean, ci = mean_ci(v for v in (2.0, 2.0))
        assert (mean, ci) == (2.0, 0.0)

    def test_float_noise_never_yields_nan_ci(self):
        # Samples identical up to representation noise: the variance sum
        # must never round below zero and poison sqrt.
        vals = [0.1 + 0.2, 0.3, 0.30000000000000004] * 3
        mean, ci = mean_ci(vals)
        assert math.isfinite(mean) and math.isfinite(ci)
        assert ci >= 0.0

    def test_integer_samples(self):
        mean, ci = mean_ci([4, 4, 4])
        assert (mean, ci) == (4.0, 0.0)


class TestCampaignDegenerateSeeds:
    """mean_ci's consumers: single-seed and zero-variance campaigns."""

    @staticmethod
    def _result(throughput: float):
        from repro.config import Design
        from repro.harness.runner import RunResult, RunSpec

        spec = RunSpec(design=Design.ATOM_OPT, workload="hash")
        return RunResult(spec=spec, cycles=100, txns=10,
                         throughput=throughput, sq_full_cycles=0,
                         log_entries=1, source_logged=0, log_writes=1,
                         stats={})

    def test_single_seed_replica_has_zero_ci(self):
        from repro.harness.campaign import ReplicatedResult

        rep = ReplicatedResult(spec=None, results=[self._result(5.0)])
        assert rep.throughput_mean == 5.0
        assert rep.throughput_ci == 0.0
        assert not math.isnan(rep.throughput_ci)

    def test_zero_variance_seeds_have_zero_ci(self):
        from repro.harness.campaign import (ReplicatedResult,
                                            aggregate_results)

        results = [self._result(5.0) for _ in range(3)]
        rep = ReplicatedResult(spec=None, results=results)
        assert rep.throughput_ci == 0.0
        agg = aggregate_results(results)
        assert agg.stats["campaign"]["throughput_ci"] == 0.0
        assert not math.isnan(agg.throughput)
