"""Analytics-layer net: decompositions, recovery figure, trend gate.

The load-bearing invariant is the *partition*: for every committed
transaction the stage cycles sum exactly to the async-span duration —
on hand-built events where the answer is checkable by eye, and on real
traced runs of every design.  The recovery-cost aggregation is checked
against its exclusion rules (probe points, failures, quarantined
points), ``RecoveryCost.merge`` against associativity, and the perf
trend gate against both an injected regression (must flag) and
within-CI wiggle (must stay quiet).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.config import Design
from repro.faults.analytics import RecoveryCost
from repro.harness.campaign import Campaign, CrashSweepResult, crash_grid, crash_sweep
from repro.harness.perf import (
    append_history, check_trend, format_trend, history_entry, load_history,
)
from repro.harness.runner import RunSpec, run_spec
from repro.obs.analyze import (
    STAGES, _clip, _merge, _subtract, aggregate_breakdowns, decompose_trace,
    differential, recovery_figure, recovery_records_from_outcomes,
)
from repro.obs.trace import TID_REDO, TID_SQ_BASE, Tracer

TINY = RunSpec(
    design=Design.ATOM_OPT, workload="hash", entry_bytes=256,
    num_cores=4, txns_per_thread=4, warmup_per_thread=0,
    initial_items=12, seed=11,
)


def traced_breakdowns(spec: RunSpec):
    tracer = Tracer()
    result = run_spec(spec, instrument=tracer.install)
    breakdowns, cut = decompose_trace(tracer.to_chrome_trace())
    return result, breakdowns, cut


# -- the partition invariant on real traces -----------------------------------

@pytest.mark.parametrize("design", list(Design), ids=lambda d: d.value)
class TestPartitionOnRealTraces:
    def test_stages_sum_exactly_to_duration(self, design):
        spec = dataclasses.replace(TINY, design=design)
        result, breakdowns, cut = traced_breakdowns(spec)
        assert cut == 0
        assert len(breakdowns) >= result.txns
        for bd in breakdowns:
            assert set(bd.stages) == set(STAGES)
            assert all(v >= 0 for v in bd.stages.values())
            assert sum(bd.stages.values()) == bd.duration

    def test_design_specific_stages_appear_where_expected(self, design):
        spec = dataclasses.replace(TINY, design=design)
        _result, breakdowns, _cut = traced_breakdowns(spec)
        agg = aggregate_breakdowns(breakdowns)
        redo_cycles = agg["stages"]["redo_commit"]["total"]
        if design is Design.REDO:
            assert redo_cycles > 0
            assert agg["apply_lag"] is not None
            assert agg["stages"]["log_persist"]["total"] == 0
        else:
            assert redo_cycles == 0
            assert agg["apply_lag"] is None
        if design is Design.NON_ATOMIC:
            assert agg["stages"]["log_persist"]["total"] == 0


# -- the partition on hand-built events ---------------------------------------

def synthetic_trace():
    """One txn [100, 200) on core 0 with every component represented.

    Priority resolution: commit-flush [180, 200) wins 20; log-record
    [110, 150) wins 40; sq-entry [90, 120) clips to [100, 120) but only
    [100, 110) survives the log claim -> 10; execute keeps [150, 180)
    -> 30.  Sum: 20+40+10+30 = 100 = duration.
    """
    return [
        {"ph": "b", "name": "txn", "cat": "txn", "id": 1, "pid": 1,
         "tid": 0, "ts": 100, "args": {"txn": 1, "core": 0}},
        {"ph": "X", "name": "sq-entry", "pid": 1, "tid": TID_SQ_BASE,
         "ts": 90, "dur": 30},
        {"ph": "X", "name": "log-record", "pid": 1, "tid": 2000,
         "ts": 110, "dur": 40, "args": {"entries": 1, "core": 0}},
        {"ph": "X", "name": "commit-flush", "pid": 1, "tid": 0,
         "ts": 180, "dur": 20, "args": {"txn": 1}},
        {"ph": "i", "name": "adr-flush", "pid": 1, "tid": 2000,
         "ts": 150, "args": {"mc": 0, "bytes": 64}},
        {"ph": "i", "name": "adr-flush", "pid": 1, "tid": 2000,
         "ts": 200, "args": {"mc": 0, "bytes": 64}},
        {"ph": "e", "name": "txn", "cat": "txn", "id": 1, "pid": 1,
         "tid": 0, "ts": 200, "args": {"txn": 1}},
    ]


class TestSyntheticDecomposition:
    def test_priority_resolution_is_exact(self):
        breakdowns, cut = decompose_trace(synthetic_trace())
        assert cut == 0
        (bd,) = breakdowns
        assert bd.duration == 100
        assert bd.stages == {"commit_flush": 20, "log_persist": 40,
                             "sq_residency": 10, "redo_commit": 0,
                             "execute": 30}
        assert sum(bd.stages.values()) == bd.duration

    def test_adr_drain_window_is_half_open(self):
        (bd,), _ = decompose_trace(synthetic_trace())
        # ts=150 lands inside [100, 200); ts=200 does not.
        assert bd.adr_drains == 1

    def test_apply_lag_is_max_apply_end_minus_txn_end(self):
        events = synthetic_trace() + [
            {"ph": "X", "name": "backend-apply", "pid": 1, "tid": TID_REDO,
             "ts": 210, "dur": 50, "args": {"txn": 1, "lines": 3}},
            {"ph": "X", "name": "backend-apply", "pid": 1, "tid": TID_REDO,
             "ts": 220, "dur": 10, "args": {"txn": 1, "lines": 1}},
        ]
        (bd,), _ = decompose_trace(events)
        assert bd.apply_lag == 260 - 200

    def test_cut_txns_excluded_by_default_included_on_request(self):
        events = synthetic_trace()
        events[-1] = {**events[-1], "args": {"txn": 1, "cut": True}}
        breakdowns, cut = decompose_trace(events)
        assert (breakdowns, cut) == ([], 1)
        breakdowns, cut = decompose_trace(events, include_cut=True)
        assert cut == 1 and len(breakdowns) == 1

    def test_accepts_wrapper_and_bare_list(self):
        bare, _ = decompose_trace(synthetic_trace())
        wrapped, _ = decompose_trace({"traceEvents": synthetic_trace()})
        assert [b.stages for b in bare] == [b.stages for b in wrapped]


class TestIntervalArithmetic:
    def test_merge_sorts_and_coalesces(self):
        assert _merge([(5, 9), (1, 3), (2, 4), (9, 9)]) == [(1, 4), (5, 9)]

    def test_clip_drops_empty_results(self):
        assert _clip([(0, 10), (20, 30)], 5, 22) == [(5, 10), (20, 22)]
        assert _clip([(0, 4)], 4, 9) == []

    def test_subtract_splits_and_consumes(self):
        assert _subtract([(0, 10)], [(2, 4), (6, 8)]) == [(0, 2), (4, 6),
                                                          (8, 10)]
        assert _subtract([(0, 10)], [(0, 10)]) == []
        assert _subtract([], [(0, 10)]) == []


# -- aggregates and the differential ------------------------------------------

class TestAggregates:
    def test_empty_set_is_well_formed(self):
        agg = aggregate_breakdowns([])
        assert agg["txns"] == 0
        assert agg["stages"] == {}
        assert agg["duration"] is None

    def test_single_breakdown_has_zero_ci(self):
        (bd,), _ = decompose_trace(synthetic_trace())
        agg = aggregate_breakdowns([bd])
        for stage in STAGES:
            assert agg["stages"][stage]["ci"] == 0.0
        assert agg["duration"] == {"mean": 100.0, "ci": 0.0, "total": 100}
        assert agg["adr"] == {"drains": 1, "txns_with_drain": 1,
                              "share": 1.0}

    def test_differential_deltas_against_first_label(self):
        (bd,), _ = decompose_trace(synthetic_trace())
        ref = aggregate_breakdowns([bd])
        other = aggregate_breakdowns([bd, bd])
        diff = differential({"base": ref, "atom-opt": other})
        assert diff["reference"] == "base"
        assert diff["deltas"]["atom-opt"]["duration"]["delta"] == 0.0
        assert differential({}) == {"reference": None, "deltas": {}}


# -- recovery-cost figure ------------------------------------------------------

def cost(cycles: int) -> dict:
    return RecoveryCost(cycles=cycles, lines_scanned=cycles // 10).to_dict()


class TestRecoveryFigure:
    def test_empty_records_give_empty_figure(self):
        assert recovery_figure([]) == {}

    def test_exclusion_rules(self):
        records = [
            ("atom", 1000, cost(500), True),       # kept
            ("atom", None, cost(500), True),       # probe point: excluded
            ("atom", 1000, {}, True),              # quarantined: excluded
            ("atom", 1000, cost(9_999), False),    # failed: excluded
        ]
        figure = recovery_figure(records)
        assert figure["atom"]["points"] == 1
        assert figure["atom"]["series"] == [
            {"crash_cycle": 1000, "mean_cycles": 500.0, "ci": 0.0,
             "points": 1}
        ]

    def test_single_sample_series_has_zero_ci(self):
        figure = recovery_figure([("redo", 2000, cost(100), True)])
        assert figure["redo"]["ci"] == 0.0
        assert figure["redo"]["series"][0]["ci"] == 0.0

    def test_means_group_by_design_and_crash_cycle(self):
        records = [("atom", 1000, cost(100), True),
                   ("atom", 1000, cost(300), True),
                   ("atom", 3000, cost(500), True),
                   ("redo", 1000, cost(800), True)]
        figure = recovery_figure(records)
        assert sorted(figure) == ["atom", "redo"]
        atom = figure["atom"]
        assert [s["crash_cycle"] for s in atom["series"]] == [1000, 3000]
        assert atom["series"][0]["mean_cycles"] == 200.0
        assert atom["series"][0]["points"] == 2
        assert atom["points"] == 3

    def test_adapter_reads_spec_and_point_shapes(self):
        class FakeSpec:
            design = Design.ATOM
            crash_cycle = 1200

        class FaultLike:
            spec = FakeSpec()
            ok = True
            recovery_cost = cost(42)

        class LitmusLike:
            point = FakeSpec()
            error = ""
            recovery_cost = cost(7)

        class LitmusErrored:
            point = FakeSpec()
            error = "boom"
            recovery_cost = cost(9)

        records = recovery_records_from_outcomes(
            [FaultLike(), LitmusLike(), LitmusErrored()])
        assert records[0] == ("atom", 1200, cost(42), True)
        assert records[1] == ("atom", 1200, cost(7), True)
        assert records[2][3] is False


class TestRecoveryCostMerge:
    def merged(self, *costs: RecoveryCost) -> RecoveryCost:
        acc = RecoveryCost()
        for c in costs:
            acc.merge(RecoveryCost.from_dict(c.to_dict()))
        return acc

    def test_merge_is_associative(self):
        a = RecoveryCost(cycles=100, records_undone=2, lines_scanned=30,
                         checksum_rejected=1)
        b = RecoveryCost(cycles=900, records_applied=4, lines_scanned=7)
        c = RecoveryCost(cycles=400, entries_undone=5, adr_invalid=2)
        ab_c = self.merged(self.merged(a, b), c)
        a_bc = self.merged(a, self.merged(b, c))
        assert ab_c.to_dict() == a_bc.to_dict()
        # Counters sum; the modeled wall-clock keeps the max.
        assert ab_c.cycles == 900
        assert ab_c.lines_scanned == 37
        assert ab_c.detections == 3

    def test_merge_with_identity_is_identity(self):
        a = RecoveryCost(cycles=5, records_undone=1)
        assert self.merged(a, RecoveryCost()).to_dict() == a.to_dict()


class TestCrashSweepFigure:
    def test_real_sweep_emits_figure_per_design(self):
        campaign = Campaign(jobs=1, cache=None)
        specs = crash_grid(designs=[Design.ATOM_OPT, Design.REDO],
                           workloads=["hash"],
                           crash_cycles=[6_000, 14_000])
        try:
            sweep = crash_sweep(campaign, specs)
        finally:
            campaign.close()
        payload = sweep.to_json()
        assert payload["kind"] == "crash-sweep"
        figure = payload["recovery_figure"]
        assert sorted(figure) == ["atom-opt", "redo"]
        for design in figure:
            series = figure[design]["series"]
            assert [s["crash_cycle"] for s in series] == [6_000, 14_000]
            # A point may legitimately cost 0 (REDO crashing before any
            # commit replays nothing), but a whole design never does.
            assert all(s["mean_cycles"] >= 0 for s in series)
            assert figure[design]["mean_cycles"] > 0

    def test_quarantined_outcomes_do_not_dilute_the_figure(self):
        from repro.harness.campaign import CrashOutcome, CrashSpec

        good = CrashOutcome(
            spec=CrashSpec(design=Design.ATOM, workload="hash",
                           crash_cycle=4_000),
            ok=True, recovery_cost=cost(250))
        quarantined = CrashOutcome(
            spec=CrashSpec(design=Design.ATOM, workload="hash",
                           crash_cycle=4_000),
            ok=False, error="quarantined: worker died", recovery_cost={})
        figure = CrashSweepResult(
            outcomes=[good, quarantined]).to_json()["recovery_figure"]
        assert figure["atom"]["points"] == 1
        assert figure["atom"]["mean_cycles"] == 250.0


# -- perf history + trend gate -------------------------------------------------

def report(geomean: float, ci: float = 0.0) -> dict:
    return {"scale": 1.0, "repeats": 2, "points": [],
            "aggregate": {"geomean_events_per_sec": geomean,
                          "geomean_mean": geomean, "geomean_ci": ci,
                          "total_events": 0, "total_wall_s": 0.0}}


def history(*geomeans: float) -> list[dict]:
    return [history_entry(report(g), timestamp=float(i))
            for i, g in enumerate(geomeans)]


class TestTrendGate:
    def test_empty_history_passes_trivially(self):
        assert check_trend([], report(100.0)) == []
        assert "no history yet" in format_trend([], report(100.0))

    def test_injected_regression_is_flagged(self):
        past = history(100_000, 101_000, 99_500, 100_500)
        failures = check_trend(past, report(80_000.0, ci=500.0))
        assert failures and "below trend" in failures[0]

    def test_within_ci_noise_stays_quiet(self):
        # History wobbles ±2k around 100k; a 1.5k dip is not a signal.
        past = history(98_000, 102_000, 100_000, 99_000, 101_000)
        assert check_trend(past, report(98_500.0, ci=1_000.0)) == []

    def test_floor_pct_absorbs_wiggle_on_flat_history(self):
        past = history(100_000, 100_000, 100_000)
        assert check_trend(past, report(99_000.0)) == []          # -1%
        assert check_trend(past, report(95_000.0))                # -5%

    def test_window_limits_the_reference(self):
        past = history(*([50_000] * 10 + [100_000] * 3))
        assert check_trend(past, report(95_000.0), window=3)
        assert check_trend(past, report(95_000.0), window=13) == []

    def test_garbage_entries_are_ignored(self):
        past = history(100_000) + [{"geomean": "fast"}, {"geomean": -1},
                                   {"note": "no geomean"}]
        assert check_trend(past, report(100_000.0)) == []
        assert "1 run(s)" in format_trend(past, report(100_000.0))


class TestHistoryLedger:
    def test_roundtrip_appends_and_loads(self, tmp_path):
        path = tmp_path / "nested" / "history.jsonl"
        append_history(path, history_entry(report(123.0), timestamp=1.0))
        append_history(path, history_entry(report(456.0), timestamp=2.0))
        entries = load_history(path)
        assert [e["geomean"] for e in entries] == [123.0, 456.0]
        assert entries[0]["t"] == 1.0

    def test_corrupt_and_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "history.jsonl"
        append_history(path, history_entry(report(123.0), timestamp=1.0))
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("\n{torn line")     # killed-runner torn tail
            fh.write("\n[1, 2, 3]\n")    # valid JSON, wrong shape
        entries = load_history(path)
        assert [e["geomean"] for e in entries] == [123.0]

    def test_missing_file_is_empty_history(self, tmp_path):
        assert load_history(tmp_path / "absent.jsonl") == []

    def test_entry_summarizes_points(self):
        rep = report(500.0, ci=10.0)
        rep["points"] = [{"design": "atom", "workload": "hash",
                          "events_per_sec": 500.0}]
        entry = history_entry(rep, timestamp=3.0)
        assert entry["points"] == {"atom/hash": 500.0}
        assert entry["geomean_ci"] == 10.0
        assert entry["schema"] == 1
