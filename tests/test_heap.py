"""NVM heap allocator."""

import pytest

from repro.common.errors import AllocationError
from repro.runtime.heap import Heap


class TestAllocation:
    def test_basic_alloc(self):
        heap = Heap(1024 * 1024)
        addr = heap.alloc(64)
        assert 0 <= addr < 1024 * 1024

    def test_large_objects_line_aligned(self):
        heap = Heap(1024 * 1024)
        for size in (64, 100, 512, 4096):
            assert heap.alloc(size) % 64 == 0

    def test_small_objects_word_aligned(self):
        heap = Heap(1024 * 1024)
        assert heap.alloc(8) % 8 == 0

    def test_explicit_alignment(self):
        heap = Heap(1024 * 1024)
        assert heap.alloc(24, align=64) % 64 == 0

    def test_allocations_do_not_overlap(self):
        heap = Heap(1024 * 1024)
        spans = []
        for _ in range(100):
            addr = heap.alloc(96)
            for other, size in spans:
                assert addr + 96 <= other or other + size <= addr
            spans.append((addr, 96))

    def test_zero_size_rejected(self):
        with pytest.raises(AllocationError):
            Heap(1024 * 1024).alloc(0)

    def test_exhaustion_raises(self):
        heap = Heap(64 * 1024, stagger_bytes=0)
        with pytest.raises(AllocationError):
            for _ in range(2000):
                heap.alloc(64)


class TestArenas:
    def test_arenas_are_disjoint(self):
        heap = Heap(1024 * 1024, arenas=4)
        addrs = [heap.alloc(64, arena=a) for a in range(4)]
        assert len(set(a // (1024 * 1024 // 4 // 2) for a in addrs)) >= 2

    def test_arena_out_of_range(self):
        with pytest.raises(AllocationError):
            Heap(1024 * 1024, arenas=2).alloc(8, arena=5)

    def test_staggering_spreads_start_pages(self):
        heap = Heap(8 * 1024 * 1024, arenas=8, stagger_bytes=4096)
        first_pages = {heap.alloc(64, arena=a) // 4096 % 4 for a in range(8)}
        assert len(first_pages) >= 2, "arena heads must not all share a controller"


class TestFreeList:
    def test_freed_block_is_reused(self):
        heap = Heap(1024 * 1024)
        addr = heap.alloc(128)
        heap.free(addr, 128)
        assert heap.alloc(128) == addr

    def test_free_list_is_per_size(self):
        heap = Heap(1024 * 1024)
        small = heap.alloc(64)
        heap.free(small, 64)
        big = heap.alloc(4096)
        assert big != small

    def test_allocated_accounting(self):
        heap = Heap(1024 * 1024)
        addr = heap.alloc(64)
        assert heap.allocated == 64
        heap.free(addr, 64)
        assert heap.allocated == 0

    def test_remaining_decreases(self):
        heap = Heap(1024 * 1024)
        before = heap.remaining()
        heap.alloc(1024)
        assert heap.remaining() <= before - 1024
