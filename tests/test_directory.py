"""MESI directory protocol flows on a real (small) system."""

import pytest

from helpers import build_system
from repro.coherence.states import MESI
from repro.config import Design


def run_until_idle(system, limit=1_000_000):
    system.engine.run(max_events=limit)


class TestProtocolFlows:
    def test_first_reader_gets_exclusive(self, system):
        done = []
        system.l1s[0].load_miss(0x40, lambda: done.append(1))
        run_until_idle(system)
        assert done == [1]
        assert system.l1s[0].probe(0x40).state is MESI.EXCLUSIVE

    def test_second_reader_shares(self, system):
        for core in (0, 1):
            system.l1s[core].load_miss(0x40, lambda: None)
            run_until_idle(system)
        entry = system.l2.probe(0x40)
        assert entry.owner is None
        assert 0 in entry.sharers and 1 in entry.sharers
        assert system.l1s[0].probe(0x40).state is MESI.SHARED

    def test_writer_invalidates_sharers(self, system):
        for core in (0, 1):
            system.l1s[core].load_miss(0x40, lambda: None)
            run_until_idle(system)
        system.l1s[2].ensure_writable(0x40, False, lambda info: None)
        run_until_idle(system)
        assert system.l1s[0].probe(0x40) is None
        assert system.l1s[1].probe(0x40) is None
        assert system.l1s[2].probe(0x40).state is MESI.MODIFIED
        assert system.l2.probe(0x40).owner == 2

    def test_ownership_transfer_between_writers(self, system):
        system.l1s[0].ensure_writable(0x40, False, lambda info: None)
        run_until_idle(system)
        system.l1s[1].ensure_writable(0x40, False, lambda info: None)
        run_until_idle(system)
        assert system.l1s[0].probe(0x40) is None
        assert system.l2.probe(0x40).owner == 1

    def test_reader_downgrades_writer(self, system):
        system.image.write(0x40, b"\x07")
        system.l1s[0].ensure_writable(0x40, False, lambda info: None)
        run_until_idle(system)
        system.l1s[1].load_miss(0x40, lambda: None)
        run_until_idle(system)
        assert system.l1s[0].probe(0x40).state is MESI.SHARED
        entry = system.l2.probe(0x40)
        assert entry.owner is None and entry.dirty

    def test_concurrent_misses_to_same_line_serialize(self, system):
        done = []
        for core in range(4):
            system.l1s[core].load_miss(0x40, lambda c=core: done.append(c))
        run_until_idle(system)
        assert sorted(done) == [0, 1, 2, 3]
        # Exactly one fetch went to memory.
        assert system.stats.domain("l2").get("misses") == 1

    def test_concurrent_getx_single_final_owner(self, system):
        for core in range(4):
            system.l1s[core].ensure_writable(0x40, False, lambda info: None)
        run_until_idle(system)
        holders = [c for c in range(4)
                   if system.l1s[c].probe(0x40) is not None
                   and system.l1s[c].probe(0x40).state is MESI.MODIFIED]
        assert len(holders) == 1
        assert system.l2.probe(0x40).owner == holders[0]


class TestFlush:
    def test_flush_persists_dirty_line(self, system):
        system.image.write(0x40, b"\x99")
        system.l1s[0].ensure_writable(0x40, False, lambda info: None)
        run_until_idle(system)
        done = []
        system.l2.flush(0, 0x40, lambda: done.append(system.engine.now))
        run_until_idle(system)
        assert done
        assert system.image.durable_read(0x40, 1) == b"\x99"
        # The owner was downgraded, copies retained.
        assert system.l1s[0].probe(0x40).state is MESI.SHARED

    def test_flush_clean_line_is_fast_ack(self, system):
        system.l1s[0].load_miss(0x40, lambda: None)
        run_until_idle(system)
        done = []
        start = system.engine.now
        system.l2.flush(0, 0x40, lambda: done.append(system.engine.now))
        run_until_idle(system)
        assert done and done[0] - start < 200

    def test_flush_absent_line_acks(self, system):
        done = []
        system.l2.flush(0, 0x9940, lambda: done.append(1))
        run_until_idle(system)
        assert done == [1]

    def test_flush_clears_log_bits(self, system):
        system.image.write(0x40, b"\x01")
        system.l1s[0].ensure_writable(0x40, False, lambda info: None)
        run_until_idle(system)
        system.l1s[0].set_log_bit(0x40)
        system.l2.flush(0, 0x40, lambda: None)
        run_until_idle(system)
        assert not system.l1s[0].log_bit(0x40)


class TestInclusion:
    def test_l2_eviction_recalls_l1_copies(self):
        # Single-way tiny L2 so one new line evicts the old one.
        system = build_system(design=Design.NON_ATOMIC)
        system.config.hierarchy.l2_tile.ways = 16  # document default
        l2 = system.l2
        # Fill one L2 set beyond capacity using same-bank aliasing lines.
        bank_stride = 64 * system.topology.num_tiles
        set_stride = bank_stride * l2.cfg.num_sets
        victim_line = 0x40
        system.l1s[0].load_miss(victim_line, lambda: None)
        run_until_idle(system)
        for i in range(1, l2.cfg.ways + 1):
            line = victim_line + i * set_stride
            if line >= system.config.data_bytes:
                pytest.skip("data space too small for aliasing sweep")
            system.l1s[1].load_miss(line, lambda: None)
            run_until_idle(system)
        assert l2.probe(victim_line) is None
        assert system.l1s[0].probe(victim_line) is None
