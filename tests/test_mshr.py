"""MSHR file: allocation, merging, capacity."""

import pytest

from repro.coherence.mshr import MSHRFile
from repro.common.errors import CoherenceError


class TestAllocation:
    def test_allocate_and_complete(self):
        mshrs = MSHRFile(4)
        hits = []
        assert mshrs.allocate(0x40, lambda: hits.append(1))
        assert mshrs.outstanding(0x40)
        waiters = mshrs.complete(0x40)
        assert len(waiters) == 1
        assert not mshrs.outstanding(0x40)

    def test_double_allocate_rejected(self):
        mshrs = MSHRFile(4)
        mshrs.allocate(0x40, lambda: None)
        with pytest.raises(CoherenceError):
            mshrs.allocate(0x40, lambda: None)

    def test_merge_attaches_waiters(self):
        mshrs = MSHRFile(4)
        mshrs.allocate(0x40, lambda: None)
        mshrs.merge(0x40, lambda: None)
        mshrs.merge(0x40, lambda: None)
        assert len(mshrs.complete(0x40)) == 3

    def test_merge_without_entry_rejected(self):
        with pytest.raises(CoherenceError):
            MSHRFile(4).merge(0x40, lambda: None)

    def test_complete_without_entry_rejected(self):
        with pytest.raises(CoherenceError):
            MSHRFile(4).complete(0x40)


class TestCapacity:
    def test_full_rejects_allocation(self):
        mshrs = MSHRFile(2)
        assert mshrs.allocate(0x00, lambda: None)
        assert mshrs.allocate(0x40, lambda: None)
        assert mshrs.full()
        assert not mshrs.allocate(0x80, lambda: None)

    def test_slot_waiter_woken_on_complete(self):
        mshrs = MSHRFile(1)
        mshrs.allocate(0x00, lambda: None)
        woken = []
        mshrs.when_slot_free(lambda: woken.append(1))
        mshrs.complete(0x00)
        assert woken == [1]

    def test_in_flight_count(self):
        mshrs = MSHRFile(8)
        for i in range(3):
            mshrs.allocate(i * 64, lambda: None)
        assert mshrs.in_flight() == 3

    def test_zero_capacity_rejected(self):
        with pytest.raises(CoherenceError):
            MSHRFile(0)
