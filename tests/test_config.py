"""Configuration validation (Table I parameters)."""

import pytest

from repro.common.errors import ConfigError
from repro.config import CacheConfig, Design, SystemConfig


class TestDefaultsMatchTableI:
    def test_core_parameters(self):
        cfg = SystemConfig()
        assert cfg.cores.num_cores == 32
        assert cfg.cores.rob_size == 192
        assert cfg.cores.store_queue_size == 32

    def test_cache_parameters(self):
        cfg = SystemConfig()
        assert cfg.hierarchy.l1.size_bytes == 32 * 1024
        assert cfg.hierarchy.l1.ways == 4
        assert cfg.hierarchy.l1.latency == 3
        assert cfg.hierarchy.l2_tile.size_bytes == 1024 * 1024
        assert cfg.hierarchy.l2_tile.ways == 16
        assert cfg.hierarchy.l2_tile.latency == 30
        assert cfg.hierarchy.mshrs == 32

    def test_memory_parameters(self):
        cfg = SystemConfig()
        assert cfg.memory.num_controllers == 4
        # 10x DRAM: 360-cycle writes, 240-cycle reads.
        assert cfg.memory.write_cycles == 360
        assert cfg.memory.read_cycles == 240
        # 5.3 GB/s at 2 GHz moves a line in ~24 cycles.
        assert cfg.memory.line_transfer_cycles == 24

    def test_noc_parameters(self):
        cfg = SystemConfig()
        assert cfg.noc.rows == 4
        assert cfg.noc.flit_bytes == 16

    def test_log_record_geometry(self):
        cfg = SystemConfig()
        assert cfg.log.record_bytes == 512
        assert cfg.log.entries_per_record == 7
        assert cfg.log.aus_per_controller == 32

    def test_validates_clean(self):
        assert SystemConfig().validate() is not None


class TestValidation:
    def test_zero_cores_rejected(self):
        cfg = SystemConfig()
        cfg.cores.num_cores = 0
        with pytest.raises(ConfigError):
            cfg.validate()

    def test_cores_must_tile_mesh(self):
        cfg = SystemConfig()
        cfg.cores.num_cores = 30  # not divisible by 4 rows
        with pytest.raises(ConfigError):
            cfg.validate()

    def test_record_geometry_consistency(self):
        cfg = SystemConfig()
        cfg.log.entries_per_record = 5
        with pytest.raises(ConfigError):
            cfg.validate()

    def test_cache_set_power_of_two(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=24 * 1024, ways=4, latency=3).validate("l1")

    def test_latency_multiplier_scales(self):
        cfg = SystemConfig()
        cfg.memory.latency_multiplier = 1.0
        assert cfg.memory.write_cycles == 36
        assert cfg.memory.read_cycles == 24
        cfg.memory.latency_multiplier = 40.0
        assert cfg.memory.write_cycles == 1440

    def test_scaled_down_is_valid(self):
        for design in Design:
            cfg = SystemConfig.scaled_down(design=design)
            assert cfg.design is design

    def test_replace(self):
        cfg = SystemConfig()
        other = cfg.replace(design=Design.REDO)
        assert other.design is Design.REDO
        assert cfg.design is not Design.REDO or cfg.design is Design.REDO
