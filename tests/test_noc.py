"""Mesh topology and network timing."""

import pytest

from repro.common.errors import ConfigError
from repro.common.stats import Stats
from repro.config import NocConfig
from repro.engine import Engine
from repro.noc.mesh import Mesh
from repro.noc.topology import Topology


def make_mesh(num_tiles=32, rows=4, controllers=4, contention=True):
    engine = Engine()
    cfg = NocConfig(rows=rows)
    topo = Topology(num_tiles, controllers, cfg)
    mesh = Mesh(engine, topo, cfg, Stats().domain("mesh"),
                model_contention=contention)
    return engine, topo, mesh


class TestTopology:
    def test_paper_mesh_is_4x8(self):
        _, topo, _ = make_mesh()
        assert topo.rows == 4 and topo.cols == 8

    def test_coordinates_roundtrip(self):
        _, topo, _ = make_mesh()
        for tile in range(32):
            row, col = topo.tile_to_coord(tile)
            assert topo.coord_to_tile(row, col) == tile

    def test_manhattan_hops(self):
        _, topo, _ = make_mesh()
        assert topo.hops(0, 0) == 0
        assert topo.hops(0, 7) == 7
        assert topo.hops(0, 31) == 3 + 7  # corner to corner

    def test_controllers_on_corners(self):
        _, topo, _ = make_mesh()
        corners = {topo.mc_tile(i) for i in range(4)}
        assert corners == {0, 7, 24, 31}

    def test_l2_home_interleaves_lines(self):
        _, topo, _ = make_mesh()
        assert topo.l2_home_tile(0) == 0
        assert topo.l2_home_tile(64) == 1
        assert topo.l2_home_tile(64 * 32) == 0

    def test_tiles_must_tile_mesh(self):
        with pytest.raises(ConfigError):
            Topology(30, 4, NocConfig(rows=4))

    def test_bad_tile_rejected(self):
        _, topo, _ = make_mesh()
        with pytest.raises(ConfigError):
            topo.tile_to_coord(32)

    def test_small_mesh_controller_fold(self):
        # 2x2 mesh with 2 controllers: corners dedupe, placement works.
        _, topo, _ = make_mesh(num_tiles=4, rows=2, controllers=2)
        assert topo.mc_tile(0) != topo.mc_tile(1)


class TestMeshTiming:
    def test_flit_count(self):
        _, _, mesh = make_mesh()
        assert mesh.flits(0) == 1          # header-only
        assert mesh.flits(8) == 1          # 8B payload + 8B header
        assert mesh.flits(64) == 5         # line + header = 72B / 16

    def test_latency_grows_with_distance(self):
        _, topo, mesh = make_mesh()
        near = mesh.latency(0, 1, 8)
        far = mesh.latency(0, 31, 8)
        assert far > near
        assert far - near == (topo.hops(0, 31) - topo.hops(0, 1)) * 2

    def test_send_delivers_at_latency(self):
        engine, _, mesh = make_mesh(contention=False)
        seen = []
        mesh.send(0, 31, 64, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [mesh.latency(0, 31, 64)]

    def test_injection_port_serializes_bursts(self):
        engine, _, mesh = make_mesh(contention=True)
        seen = []
        for _ in range(3):
            mesh.send(0, 1, 64, lambda: seen.append(engine.now))
        engine.run()
        deltas = [b - a for a, b in zip(seen, seen[1:])]
        assert all(d == mesh.flits(64) for d in deltas)

    def test_streamed_send_skips_injection_port(self):
        engine, _, mesh = make_mesh(contention=True)
        seen = []
        for _ in range(3):
            mesh.send_streamed(0, 1, 64, lambda: seen.append(engine.now))
        engine.run()
        assert len(set(seen)) == 1  # all delivered together

    def test_request_response_is_sum(self):
        _, _, mesh = make_mesh()
        rt = mesh.request_response(0, 5, 8, 64)
        assert rt == mesh.latency(0, 5, 8) + mesh.latency(5, 0, 64)
