"""Property-based tests for the persistent B+-Tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import WorkloadError
from repro.mem.image import MemoryImage
from repro.runtime.api import ImageReader
from repro.runtime.driver import DirectDriver
from repro.runtime.heap import Heap
from repro.workloads.bplustree import BPlusTree


def make_tree(order=4):
    image = MemoryImage(8 * 1024 * 1024)
    heap = Heap(8 * 1024 * 1024)
    driver = DirectDriver(image, durable=True)
    tree = BPlusTree(heap, arena=0, order=order)
    driver.run(tree.create())
    return tree, driver, image


class TestBasics:
    def test_empty_get(self):
        tree, driver, _ = make_tree()
        assert driver.run(tree.get(5)) is None

    def test_put_get(self):
        tree, driver, _ = make_tree()
        driver.run(tree.put(5, 500))
        assert driver.run(tree.get(5)) == 500

    def test_update_in_place(self):
        tree, driver, _ = make_tree()
        driver.run(tree.put(5, 1))
        driver.run(tree.put(5, 2))
        assert driver.run(tree.get(5)) == 2

    def test_delete(self):
        tree, driver, _ = make_tree()
        driver.run(tree.put(5, 1))
        assert driver.run(tree.delete(5)) is True
        assert driver.run(tree.get(5)) is None
        assert driver.run(tree.delete(5)) is False

    def test_splits_preserve_all_keys(self):
        tree, driver, image = make_tree(order=4)
        for key in range(100):
            driver.run(tree.put(key, key * 10))
        for key in range(100):
            assert driver.run(tree.get(key)) == key * 10
        found = tree.walk_durable(ImageReader(image))
        assert found == {k: k * 10 for k in range(100)}

    def test_reverse_insertion_order(self):
        tree, driver, image = make_tree(order=4)
        for key in reversed(range(60)):
            driver.run(tree.put(key, key))
        assert tree.walk_durable(ImageReader(image)) == {
            k: k for k in range(60)
        }

    def test_min_order_enforced(self):
        with pytest.raises(WorkloadError):
            BPlusTree(Heap(1024 * 1024), arena=0, order=2)


class TestProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(st.sampled_from(["put", "delete", "get"]),
                      st.integers(min_value=0, max_value=200)),
            max_size=300,
        ),
        st.sampled_from([3, 4, 8, 16]),
    )
    def test_matches_dict_model(self, script, order):
        tree, driver, image = make_tree(order=order)
        model = {}
        for op, key in script:
            if op == "put":
                driver.run(tree.put(key, key ^ 0x5A5A))
                model[key] = key ^ 0x5A5A
            elif op == "delete":
                assert driver.run(tree.delete(key)) == (key in model)
                model.pop(key, None)
            else:
                assert driver.run(tree.get(key)) == model.get(key)
        assert tree.walk_durable(ImageReader(image)) == model

    @settings(max_examples=15, deadline=None)
    @given(st.sets(st.integers(min_value=0, max_value=10_000),
                   min_size=1, max_size=300))
    def test_leaf_chain_is_sorted(self, keys):
        tree, driver, image = make_tree(order=8)
        for key in keys:
            driver.run(tree.put(key, 1))
        found = tree.walk_durable(ImageReader(image))
        assert sorted(found) == sorted(keys)
