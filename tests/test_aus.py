"""Atomic update structures: bucket allocation, free list, AUS pool."""

import pytest

from repro.atom.aus import AusAllocator, AusState, BucketAllocator
from repro.common.errors import LogOverflowError
from repro.config import LogConfig


def make_pool(buckets=8, aus=4):
    cfg = LogConfig(buckets_per_controller=buckets, aus_per_controller=aus)
    states = [AusState(i, buckets) for i in range(aus)]
    return BucketAllocator(cfg), states


class TestBucketAllocation:
    def test_allocates_first_free(self):
        alloc, states = make_pool()
        assert alloc.allocate(states[0], states) == 0
        assert alloc.allocate(states[0], states) == 1
        assert states[0].bucket_vec.popcount() == 2

    def test_free_list_is_nor_of_vectors(self):
        alloc, states = make_pool(buckets=4)
        alloc.allocate(states[0], states)
        alloc.allocate(states[1], states)
        free = alloc.free_list(states)
        assert list(free.iter_ones()) == [2, 3]

    def test_exhaustion_returns_none(self):
        alloc, states = make_pool(buckets=2)
        assert alloc.allocate(states[0], states) is not None
        assert alloc.allocate(states[1], states) is not None
        assert alloc.allocate(states[2], states) is None

    def test_reset_frees_buckets(self):
        alloc, states = make_pool(buckets=2)
        alloc.allocate(states[0], states)
        alloc.allocate(states[0], states)
        states[0].reset()
        assert alloc.allocate(states[1], states) is not None

    def test_reset_clears_registers(self):
        _, states = make_pool()
        state = states[0]
        state.current_bucket = 3
        state.current_record = 5
        state.update_start_seq = 17
        state.reset()
        assert state.current_bucket is None
        assert state.current_record == 0
        assert state.update_start_seq is None
        assert not state.active()


class TestAusAllocator:
    def test_grants_up_to_capacity(self):
        pool = AusAllocator(2)
        granted = []
        pool.acquire(0, granted.append)
        pool.acquire(1, granted.append)
        assert len(granted) == 2
        assert pool.available() == 0

    def test_structural_overflow_queues(self):
        pool = AusAllocator(1)
        granted = []
        pool.acquire(0, lambda s: granted.append(("c0", s)))
        pool.acquire(1, lambda s: granted.append(("c1", s)))
        assert granted == [("c0", 0)]
        assert pool.waiting() == 1
        pool.release(0)
        assert granted == [("c0", 0), ("c1", 0)]

    def test_fifo_grant_order(self):
        pool = AusAllocator(1)
        order = []
        pool.acquire(0, lambda s: order.append(0))
        pool.acquire(1, lambda s: order.append(1))
        pool.acquire(2, lambda s: order.append(2))
        pool.release(0)
        pool.release(0)
        assert order == [0, 1, 2]

    def test_holder_tracking(self):
        pool = AusAllocator(2)
        pool.acquire(7, lambda s: None)
        assert pool.holder(0) == 7
        pool.release(0)
        assert pool.holder(0) is None

    def test_zero_slots_rejected(self):
        with pytest.raises(LogOverflowError):
            AusAllocator(0)
