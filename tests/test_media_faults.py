"""Media-fault realism: checksum plane, torn data, bit rot, silent accounting.

The media models (``torn-data-write``, ``bit-rot``) damage lines with no
format CRC, so their contracts hinge on the per-data-line checksum
plane:

* plane **on** — recovery's scrub detects the damage
  (``line_checksum_rejected``), the cell verdict is ``detected``, and
  silent corruption is a hard failure;
* plane **off** — the same damage must land in the *silent* bucket
  (accounted against the injector's ground truth), never report ``ok``.

``correlated-loss`` is the consistency-preserving control: losing k
write queues at once only removes state a whole-machine cut could also
have removed.
"""

import pytest

from repro.common.errors import ConfigError
from repro.common.units import CACHE_LINE_BYTES
from repro.config import Design
from repro.faults.models import (
    BitRot, ControllerLoss, CorrelatedControllerLoss, LogCorruption,
    MultiFault, TornDataWrite, TornLogWrite, fault_from_dict,
    partition_applicable, resolve_inapplicable, torn_prefix_from_seed,
)
from repro.faults.sweep import (
    FaultCell, FaultOutcome, FaultSpec, FaultSweepResult, execute_fault_point,
)
from repro.mem.image import MemoryImage

LINE = CACHE_LINE_BYTES


class TestChecksumPlane:
    """Image-level semantics: legit persists maintain CRCs, damage
    paths leave them stale, verify_line fails exactly on damage."""

    def _image(self):
        return MemoryImage(16 * LINE, line_checksums=True)

    def test_persist_records_and_verifies(self):
        img = self._image()
        img.persist(0, b"\xaa" * LINE)
        assert img.verify_line(0)
        assert img.verify_line(13)  # any address within the line

    def test_damage_leaves_the_checksum_stale(self):
        img = self._image()
        img.persist(0, b"\xaa" * LINE)
        assert img.damage(3, b"\x00\x01")
        assert not img.verify_line(0)
        # A legitimate re-persist refreshes the metadata.
        img.persist(0, img.durable_line(0))
        assert img.verify_line(0)

    def test_persist_torn_lands_a_prefix_and_fails_verification(self):
        img = self._image()
        img.persist(LINE, b"\x11" * LINE)
        assert img.persist_torn(LINE, b"\x22" * LINE, 60)
        assert img.durable_line(LINE) == b"\x22" * 60 + b"\x11" * 4
        assert not img.verify_line(LINE)

    def test_vacuous_tears_report_unchanged(self):
        img = self._image()
        img.persist(LINE, b"\x22" * LINE)
        # Zero-byte prefix = a dropped write, and a prefix matching the
        # old cells byte for byte: neither changes durable contents.
        assert img.persist_torn(LINE, b"whatever", 0) is False
        assert img.persist_torn(LINE, b"\x22" * LINE, 60) is False
        assert img.verify_line(LINE)

    def test_damage_only_line_fails_verification(self):
        # A line only a damage path ever wrote has no recorded checksum
        # — verification must fail, not vacuously pass.
        img = self._image()
        assert img.damage(2 * LINE, b"\x05" * LINE)
        assert 2 * LINE in img.touched_durable_lines()
        assert not img.verify_line(2 * LINE)

    def test_sync_all_recomputes_checksums(self):
        img = self._image()
        img.write(0, b"\x07" * LINE)
        img.damage(0, b"\x01")
        img.sync_all()
        assert img.durable_line(0) == b"\x07" * LINE
        assert img.verify_line(0)

    def test_plane_off_records_nothing(self):
        img = MemoryImage(4 * LINE, line_checksums=False)
        img.persist(0, b"\xaa" * LINE)
        assert img._line_crc == {}


class TestMediaFaultModels:
    def test_round_trips(self):
        for model in (
            TornDataWrite(),
            TornDataWrite(controller=1, prefix_seed=5),
            BitRot(seed=3, rate=0.5, regions="data"),
            CorrelatedControllerLoss(controllers=[0, 2]),
            MultiFault(models=[CorrelatedControllerLoss(), BitRot()]),
        ):
            clone = fault_from_dict(model.to_dict())
            assert clone == model
            assert clone.to_dict() == model.to_dict()

    def test_seeded_torn_data_derives_prefix(self):
        model = TornDataWrite(prefix_seed=11)
        assert model.prefix_bytes == torn_prefix_from_seed(11)

    def test_bad_parameters_rejected(self):
        for payload in (
            {"kind": "bit-rot", "rate": 0.0},
            {"kind": "bit-rot", "rate": 1.5},
            {"kind": "bit-rot", "regions": "tape"},
            {"kind": "torn-data-write", "prefix_bytes": 0},
            {"kind": "torn-data-write", "prefix_bytes": LINE},
            {"kind": "correlated-loss", "controllers": [0]},
            {"kind": "correlated-loss", "controllers": [0, 0]},
            {"kind": "correlated-loss", "controllers": [-1, 0]},
            {"kind": "correlated-loss", "controllers": "zero"},
        ):
            with pytest.raises(ConfigError):
                fault_from_dict(payload)

    def test_correlated_loss_normalizes_controller_ids(self):
        model = CorrelatedControllerLoss(controllers=[2, 0, 2, 1])
        assert model.controllers == [0, 1, 2]

    def test_applicability(self):
        for design in Design:
            assert TornDataWrite().applicable(design)
            assert CorrelatedControllerLoss().applicable(design)
            assert BitRot(regions="data").applicable(design)
            assert BitRot(regions="all").applicable(design)
        # Log/ADR decay only means anything on designs with an undo log.
        for design in (Design.REDO, Design.NON_ATOMIC):
            assert not BitRot(regions="log").applicable(design)
            assert not BitRot(regions="adr").applicable(design)
        assert BitRot(regions="log").applicable(Design.ATOM)
        assert BitRot(regions="adr").applicable(Design.ATOM_OPT)

    def test_detection_axes(self):
        for cls in (TornDataWrite, BitRot):
            assert cls.expects_detection
            assert cls.detection_needs_checksums
            assert not cls.preserves_consistency
        assert CorrelatedControllerLoss.preserves_consistency
        assert not CorrelatedControllerLoss.expects_detection

    def test_composite_detection_needs_checksums(self):
        # All detection-expecting members media -> plane-gated.
        assert MultiFault(
            models=[TornDataWrite(), BitRot()]
        ).detection_needs_checksums
        # One format-CRC member (log-corruption) can satisfy the
        # contract without the plane -> not gated.
        assert not MultiFault(
            models=[TornDataWrite(), LogCorruption()]
        ).detection_needs_checksums
        # No detection-expecting member at all -> not gated.
        assert not MultiFault(
            models=[ControllerLoss(), CorrelatedControllerLoss()]
        ).detection_needs_checksums


class TestSharedStrictnessPolicy:
    def test_partition_splits_and_explains(self):
        models = [TornLogWrite(), BitRot(regions="log"), ControllerLoss()]
        usable, dropped = partition_applicable(models, [Design.REDO])
        assert [m.kind for m in usable] == ["controller-loss"]
        assert [m.kind for m, _ in dropped] == ["torn-log-write", "bit-rot"]
        for _, reason in dropped:
            assert "applies to none" in reason
            assert "redo" in reason

    def test_partition_keeps_models_usable_on_any_selected_design(self):
        usable, dropped = partition_applicable(
            [TornLogWrite()], [Design.REDO, Design.ATOM])
        assert usable and not dropped

    def test_resolve_strict_raises_with_the_escape_hatch(self):
        with pytest.raises(ConfigError, match="--drop-inapplicable"):
            resolve_inapplicable([TornLogWrite()], [Design.NON_ATOMIC],
                                 strict=True)

    def test_resolve_drop_returns_reasons(self):
        usable, reasons = resolve_inapplicable(
            [TornLogWrite(), ControllerLoss()], [Design.NON_ATOMIC],
            strict=False)
        assert [m.kind for m in usable] == ["controller-loss"]
        assert len(reasons) == 1 and "torn-log-write" in reasons[0]


def _bit_rot_point(design=Design.ATOM_OPT, *, checksums, cycle=8_000):
    return execute_fault_point(FaultSpec(
        design=design, workload="hash",
        fault={"kind": "bit-rot", "rate": 1.0, "regions": "data", "seed": 1},
        crash_cycle=cycle, checksums=checksums,
    ))


class TestSilentAccounting:
    """End-to-end: the same damage is detected with the plane and
    accounted as silent without it — never 'ok'."""

    def test_bit_rot_with_checksums_is_detected(self):
        out = _bit_rot_point(checksums=True)
        assert out.ok, out.error
        assert out.applied
        assert out.detections > 0
        assert out.silent == 0

    def test_bit_rot_without_checksums_is_silent(self):
        out = _bit_rot_point(checksums=False)
        assert out.ok, out.error  # no detection contract without the plane
        assert out.applied
        assert out.detections == 0
        assert out.silent > 0

    def test_torn_data_with_checksums_is_detected(self):
        out = execute_fault_point(FaultSpec(
            design=Design.ATOM_OPT, workload="hash",
            fault={"kind": "torn-data-write"},
            crash_cycle=8_000, checksums=True,
        ))
        assert out.ok, out.error
        assert out.applied, "no data write in flight at this cycle"
        assert out.detections > 0
        assert out.silent == 0

    def test_correlated_loss_preserves_consistency(self):
        for design in (Design.ATOM, Design.REDO):
            out = execute_fault_point(FaultSpec(
                design=design, workload="hash",
                fault={"kind": "correlated-loss"},
                crash_cycle=8_000,
            ))
            assert out.ok, out.error
            assert out.applied
            assert out.idempotent

    def test_cell_verdict_precedence(self):
        spec = FaultSpec(design=Design.ATOM, workload="hash",
                         fault={"kind": "bit-rot"}, crash_cycle=1)

        def cell(**kw):
            c = FaultCell("atom", "hash", "bit-rot")
            c.absorb(FaultOutcome(spec=spec, **kw))
            return c.status

        assert cell(ok=True, applied=False) == "vacuous"
        assert cell(ok=True, applied=True) == "ok"
        assert cell(ok=True, applied=True, detections=3) == "detected"
        assert cell(ok=True, applied=True, detections=3,
                    contained=1) == "contained"
        # Unflagged damage outranks detections: the cell is never 'ok'
        # or merely 'detected' while silent lines survived.
        assert cell(ok=True, applied=True, detections=3, silent=2) == "silent"
        assert cell(ok=False, applied=True, silent=2) == "FAIL"

    def test_silent_cells_surface_in_the_artifact(self):
        spec = FaultSpec(design=Design.ATOM, workload="hash",
                         fault={"kind": "bit-rot"}, crash_cycle=1)
        sweep = FaultSweepResult(outcomes=[
            FaultOutcome(spec=spec, ok=True, applied=True, silent=3),
        ])
        payload = sweep.to_json()
        assert payload["summary"]["silent"] == 1
        assert payload["summary"]["silent_lines"] == 3
        (cell,) = payload["cells"]
        assert cell["status"] == "silent"
        assert cell["silent"] == 3
        assert "silent" in sweep.render()
