"""Chaos net: the supervised campaign fabric under injected faults.

Every test drives the *real* worker pool — real forked processes, real
``os._exit`` deaths, real watchdog kills — through a deterministic
:class:`~repro.harness.chaos.ChaosPlan` and asserts the campaign
converges to results bit-identical to the undisturbed run, in
submission order.  Poison tasks must fail only their own cell, and a
pool past its respawn budget must degrade to inline execution and
still finish the batch.
"""

from __future__ import annotations

import pickle

import pytest

from repro.common.errors import ConfigError
from repro.config import Design
from repro.harness.campaign import (
    Campaign,
    CrashSpec,
    crash_sweep,
    result_to_dict,
)
from repro.harness.cache import ResultCache
from repro.harness.chaos import (
    ChaosAction,
    ChaosPlan,
    corrupt_frame_on,
    hang_on,
    kill_worker_on,
    poison_on,
    tear_cache_entry,
)
from repro.harness.runner import RunSpec
from repro.harness.supervise import (
    DEFAULT_TASK_TIMEOUTS,
    FailedOutcome,
    RetryPolicy,
)

TINY = RunSpec(
    design=Design.ATOM_OPT, workload="hash", num_cores=4,
    txns_per_thread=4, warmup_per_thread=1, initial_items=8,
)
SPECS = [TINY.with_seed(7 + k) for k in range(6)]


def chaos_campaign(*actions, **retry_kw) -> Campaign:
    retry_kw.setdefault("backoff_base", 0.01)
    return Campaign(jobs=2, cache=None, retry=RetryPolicy(**retry_kw),
                    chaos=ChaosPlan(list(actions)))


@pytest.fixture(scope="module")
def baseline():
    """The undisturbed run every chaos run must converge to."""
    campaign = Campaign(jobs=1, cache=None)
    return [result_to_dict(r) for r in campaign.run(SPECS)]


def run_and_dict(campaign) -> list[dict]:
    try:
        return [result_to_dict(r) for r in campaign.run(SPECS)]
    finally:
        campaign.close()


class TestChaosPlan:
    def test_plan_is_picklable(self):
        """Plans cross the fork boundary into every worker."""
        plan = ChaosPlan([kill_worker_on(2), hang_on(1, seconds=5.0),
                          corrupt_frame_on(0), poison_on(3)])
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.action_for(2, 0).kind == "kill"
        assert clone.action_for(1, 0).seconds == 5.0

    def test_actions_key_on_task_and_attempt(self):
        plan = ChaosPlan([kill_worker_on(2, attempt=0)])
        assert plan.action_for(2, 0) is not None
        assert plan.action_for(2, 1) is None  # retry runs clean
        assert plan.action_for(3, 0) is None
        assert ChaosPlan([poison_on(1)]).action_for(1, 9) is not None

    def test_invalid_actions_rejected(self):
        with pytest.raises(ConfigError):
            ChaosAction("explode", 0)
        with pytest.raises(ConfigError):
            ChaosAction("kill", -1)
        with pytest.raises(ConfigError):
            ChaosAction("hang", 0, seconds=0.0)
        with pytest.raises(ConfigError):
            ChaosPlan(["kill"])


class TestWorkerDeath:
    def test_killed_worker_is_respawned_and_task_retried(self, baseline,
                                                         capfd):
        campaign = chaos_campaign(kill_worker_on(2))
        assert run_and_dict(campaign) == baseline
        assert campaign.quarantined == []
        err = capfd.readouterr().err
        assert "exited mid-batch" in err
        assert "index=2" in err and "workload=hash" in err
        # Telemetry mirrors the injected plan: one death, one retry.
        counts = campaign.telemetry.counts
        assert counts.get("worker-death") == 1
        assert counts.get("retry") == 1
        assert counts.get("respawn") == 1
        assert counts.get("quarantine", 0) == 0
        assert counts["reply"] == len(SPECS)

    def test_corrupt_result_frame_discredits_the_worker(self, baseline):
        campaign = chaos_campaign(corrupt_frame_on(0))
        assert run_and_dict(campaign) == baseline
        assert campaign.quarantined == []
        counts = campaign.telemetry.counts
        assert counts.get("corrupt-frame") == 1
        assert counts.get("retry") == 1

    def test_kill_plus_hang_in_one_batch_bit_identical(self, baseline):
        """Acceptance: one worker SIGKILLed and one hung mid-batch —
        the campaign completes bit-identical to the undisturbed run,
        order preserved."""
        campaign = chaos_campaign(
            kill_worker_on(1), hang_on(3, seconds=30.0),
            task_timeout=1.0,
        )
        assert run_and_dict(campaign) == baseline


class TestWatchdog:
    def test_hung_worker_is_killed_and_task_retried(self, baseline, capfd):
        campaign = chaos_campaign(hang_on(1, seconds=30.0),
                                  task_timeout=0.5)
        assert run_and_dict(campaign) == baseline
        err = capfd.readouterr().err
        assert "hung" in err and "index=1" in err
        counts = campaign.telemetry.counts
        assert counts.get("watchdog-kill") == 1
        assert counts.get("retry") == 1

    def test_per_kind_deadline_defaults(self):
        policy = RetryPolicy()
        for kind, deadline in DEFAULT_TASK_TIMEOUTS.items():
            assert policy.timeout_for(kind) == deadline
        assert policy.timeout_for("unheard-of-kind") > 0
        assert RetryPolicy(task_timeout=3.0).timeout_for("run") == 3.0


class TestPoisonQuarantine:
    def test_poison_task_fails_only_its_own_cell(self, baseline):
        campaign = chaos_campaign(poison_on(3), max_retries=1)
        results = campaign.run(SPECS)
        campaign.close()
        poisoned = results[3]
        assert isinstance(poisoned, FailedOutcome)
        assert poisoned.attempts == 2  # first run + one retry
        assert "quarantined" in poisoned.error
        assert "seed=10" in poisoned.error  # names the failing spec
        assert [result_to_dict(r) for i, r in enumerate(results)
                if i != 3] == [d for i, d in enumerate(baseline) if i != 3]
        assert campaign.quarantined == [poisoned]
        counts = campaign.telemetry.counts
        assert counts.get("quarantine") == 1
        assert counts.get("retry") == 1  # max_retries=1: one retry
        failed = [e for e in campaign.telemetry.events
                  if e["event"] == "reply" and e.get("status") == "failed"]
        assert len(failed) == 1 and failed[0]["task"] == 3
        assert campaign.metrics["quarantined"] == 1

    def test_poison_crash_point_folds_into_crash_outcome(self):
        specs = [
            CrashSpec(design=Design.ATOM_OPT, workload="hash",
                      crash_cycle=cycle)
            for cycle in (6_000, 10_000, 14_000)
        ]
        campaign = chaos_campaign(poison_on(1), max_retries=0)
        try:
            sweep = crash_sweep(campaign, specs)
        finally:
            campaign.close()
        assert [o.ok for o in sweep.outcomes] == [True, False, True]
        bad = sweep.outcomes[1]
        assert "quarantined" in bad.error
        assert bad.spec.crash_cycle == 10_000
        assert len(sweep.failures) == 1
        assert "quarantined" in sweep.render()

    def test_max_retries_zero_quarantines_first_failure(self):
        campaign = chaos_campaign(kill_worker_on(0), max_retries=0)
        results = campaign.run(SPECS)
        campaign.close()
        assert isinstance(results[0], FailedOutcome)
        assert results[0].attempts == 1

    def test_quarantined_points_are_never_cached(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        campaign = Campaign(jobs=2, cache=cache,
                            retry=RetryPolicy(backoff_base=0.01,
                                              max_retries=0),
                            chaos=ChaosPlan([poison_on(0)]))
        first = campaign.run(SPECS)
        campaign.close()
        assert isinstance(first[0], FailedOutcome)
        # A clean campaign over the same cache recomputes the poisoned
        # point (a miss) rather than replaying the failure.
        clean = Campaign(jobs=1, cache=cache)
        results = clean.run(SPECS)
        assert not isinstance(results[0], FailedOutcome)
        assert clean.computed == 1  # only the quarantined point misses


class TestGracefulDegradation:
    def test_exhausted_respawn_budget_falls_back_inline(self, baseline,
                                                        capfd):
        campaign = chaos_campaign(kill_worker_on(1), respawn_budget=0)
        assert run_and_dict(campaign) == baseline
        assert "degrading to inline execution" in capfd.readouterr().err
        counts = campaign.telemetry.counts
        assert counts.get("degrade") == 1
        assert counts.get("inline-exec", 0) > 0
        assert counts.get("respawn", 0) == 0  # budget was zero

    def test_budget_scales_with_pool_size(self):
        assert RetryPolicy().budget_for(2) == 8
        assert RetryPolicy(respawn_budget=3).budget_for(2) == 3


class TestLitmusUnderChaos:
    def test_litmus_grid_converges_under_kill(self):
        """A litmus campaign with a worker killed per batch produces
        verdicts identical to the undisturbed run."""
        from repro.litmus.catalog import CATALOG
        from repro.litmus.explorer import explore

        tests = CATALOG[:2]

        def verdicts(chaos):
            campaign = Campaign(jobs=2, cache=None, chaos=chaos,
                                retry=RetryPolicy(backoff_base=0.01))
            try:
                return explore(campaign, tests=tests, points=3).to_json()
            finally:
                campaign.close()

        undisturbed = verdicts(None)
        chaotic = verdicts(ChaosPlan([kill_worker_on(1)]))
        assert chaotic == undisturbed


class TestTornCacheEntry:
    def test_torn_entry_reads_as_miss_and_is_removed(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put("ab" * 32, {"x": 1})
        tear_cache_entry(cache, "ab" * 32, keep_bytes=10)
        assert cache.get("ab" * 32) is None
        assert not cache.path_for("ab" * 32).exists()
        assert cache.corrupt_evictions == 1


class TestCacheTelemetry:
    def test_cold_and_warm_runs_are_distinguishable(self, tmp_path):
        cold = Campaign(jobs=1, cache=ResultCache(tmp_path / "cache"))
        cold.run(SPECS[:2])
        cold.close()
        assert cold.telemetry.counts.get("cache-miss") == 2
        assert cold.telemetry.counts.get("cache-hit", 0) == 0
        assert cold.metrics["cache"] == {
            "hits": 0, "misses": 2,
            "corrupt_evictions": 0, "disabled": False,
        }
        warm = Campaign(jobs=1, cache=ResultCache(tmp_path / "cache"))
        warm.run(SPECS[:2])
        warm.close()
        assert warm.telemetry.counts.get("cache-hit") == 2
        assert warm.telemetry.counts.get("dispatch", 0) == 0
        assert warm.computed == 0
        assert warm.metrics["cache"]["hits"] == 2

    def test_torn_entry_is_counted_by_the_campaign(self, tmp_path):
        from repro.harness.cache import spec_key

        seed = Campaign(jobs=1, cache=ResultCache(tmp_path / "cache"))
        seed.run(SPECS[:1])
        seed.close()
        cache = ResultCache(tmp_path / "cache")
        tear_cache_entry(cache, spec_key(SPECS[0], "run"), keep_bytes=10)
        campaign = Campaign(jobs=1, cache=cache)
        campaign.run(SPECS[:1])
        campaign.close()
        counts = campaign.telemetry.counts
        assert counts.get("cache-corrupt-evict") == 1
        assert counts.get("cache-miss") == 1
        assert campaign.metrics["cache"]["corrupt_evictions"] == 1
