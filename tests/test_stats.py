"""Statistics registry."""

from repro.common.stats import Stats


class TestStatDomain:
    def test_add_creates_at_zero(self):
        stats = Stats()
        dom = stats.domain("core0")
        dom.add("hits")
        dom.add("hits", 4)
        assert dom.get("hits") == 5

    def test_get_default(self):
        dom = Stats().domain("x")
        assert dom.get("missing") == 0
        assert dom.get("missing", 7) == 7

    def test_put_overwrites(self):
        dom = Stats().domain("x")
        dom.add("v", 3)
        dom.put("v", 1)
        assert dom.get("v") == 1

    def test_peak_keeps_max(self):
        dom = Stats().domain("x")
        dom.peak("depth", 3)
        dom.peak("depth", 1)
        dom.peak("depth", 9)
        assert dom.get("depth") == 9

    def test_contains(self):
        dom = Stats().domain("x")
        assert "c" not in dom
        dom.add("c")
        assert "c" in dom


class TestStatsRegistry:
    def test_domain_is_cached(self):
        stats = Stats()
        assert stats.domain("a") is stats.domain("a")

    def test_total_with_prefix(self):
        stats = Stats()
        stats.domain("core0").add("sq_full_cycles", 10)
        stats.domain("core1").add("sq_full_cycles", 5)
        stats.domain("l2").add("sq_full_cycles", 100)  # excluded
        assert stats.total("sq_full_cycles", prefix="core") == 15

    def test_reset_zeroes_all(self):
        stats = Stats()
        stats.domain("a").add("x", 3)
        stats.domain("b").add("y", 4)
        stats.reset()
        assert stats.domain("a").get("x") == 0
        assert stats.domain("b").get("y") == 0

    def test_as_dict_snapshot(self):
        stats = Stats()
        stats.domain("a").add("x", 1)
        snap = stats.as_dict()
        stats.domain("a").add("x", 1)
        assert snap == {"a": {"x": 1}}
