"""Memory controller unit tests: bank queueing, persist ordering acks.

The controller is the attachment point for LogM's ``log -> data``
ordering gate and the channel's bank/bandwidth model; these tests drive
it bare (no cores, no caches) with a real engine and image.
"""

from __future__ import annotations

import pytest

from repro.common.stats import Stats
from repro.common.units import CACHE_LINE_BYTES
from repro.config import LogConfig, MemoryConfig
from repro.engine import Engine
from repro.mem.channel import AccessKind
from repro.mem.controller import MemoryController
from repro.mem.image import MemoryImage
from repro.mem.layout import AddressLayout


def make_controller(**mem_kw):
    engine = Engine()
    cfg = MemoryConfig(num_controllers=1, **mem_kw)
    log = LogConfig(buckets_per_controller=64, records_per_bucket=8,
                    aus_per_controller=4)
    layout = AddressLayout(1 << 20, cfg, log)
    image = MemoryImage(layout.total_bytes)
    stats = Stats()
    mc = MemoryController(engine, 0, cfg, image, layout, stats)
    return engine, mc, image, stats


LINE = b"\xab" * CACHE_LINE_BYTES


class TestPersistAcks:
    def test_data_write_persists_payload_and_acks(self):
        engine, mc, image, _ = make_controller()
        done = []
        mc.write_data_line(0x100 * 64, LINE, on_persist=lambda: done.append(
            engine.now))
        assert image.durable_line(0x100 * 64) != LINE  # not yet persisted
        engine.run()
        assert done, "persist ack never fired"
        assert image.durable_line(0x100 * 64) == LINE
        # The ack arrives only after device latency has elapsed.
        assert done[0] >= mc.cfg.write_cycles

    def test_log_write_persists_without_gate(self):
        engine, mc, image, stats = make_controller()
        addr = mc.layout.log_base
        done = []
        mc.write_log_line(addr, LINE, on_persist=lambda: done.append(1))
        engine.run()
        assert done and image.durable_line(addr) == LINE
        assert stats.domain("mc0").get("log_writes") == 1

    def test_fetch_returns_durable_contents(self):
        engine, mc, image, _ = make_controller()
        addr = 0x40
        image.persist(addr, LINE)
        got = []
        mc.fetch_line(addr, lambda payload, src: got.append((payload, src)))
        engine.run()
        assert got == [(LINE, False)]

    def test_pre_persist_check_runs_for_data_not_log(self):
        engine, mc, _, _ = make_controller()
        checked = []
        mc.pre_persist_check = lambda addr, backend_apply: checked.append(
            (addr, backend_apply)
        )
        mc.write_data_line(0, LINE)
        mc.write_log_line(mc.layout.log_base, LINE)
        engine.run()
        assert checked == [(0, False)]

    def test_pre_persist_check_flags_backend_applies(self):
        engine, mc, _, _ = make_controller()
        checked = []
        mc.pre_persist_check = lambda addr, backend_apply: checked.append(
            (addr, backend_apply)
        )
        mc.write_data_line(0, LINE, backend_apply=True)
        engine.run()
        assert checked == [(0, True)]


class FakeGate:
    """Stands in for LogM: holds data writes until released."""

    def __init__(self):
        self.held = []
        self.supports_source_logging = False

    def gate_data_write(self, addr, release):
        self.held.append((addr, release))


class TestOrderingGate:
    def test_data_write_waits_for_logm_release(self):
        engine, mc, image, _ = make_controller()
        gate = FakeGate()
        mc.logm = gate
        acked = []
        mc.write_data_line(0, LINE, on_persist=lambda: acked.append(1))
        engine.run()
        # Gated: nothing persisted, nothing acked until LogM releases.
        assert not acked
        assert image.durable_line(0) != LINE
        assert len(gate.held) == 1
        gate.held[0][1]()  # LogM persists the header, then releases
        engine.run()
        assert acked and image.durable_line(0) == LINE


class TestBankQueueing:
    def test_bank_parallelism_bounds_throughput(self):
        """N serialized writes finish ~N/banks x device latency apart."""

        def finish_time(banks: int) -> int:
            engine, mc, _, _ = make_controller(device_banks=banks)
            last = []
            for i in range(8):
                mc.write_data_line(i * CACHE_LINE_BYTES, LINE,
                                   on_persist=lambda: last.append(engine.now))
            engine.run()
            return max(last)

        assert finish_time(1) > 1.5 * finish_time(4)

    def test_writes_to_same_bankful_queue_fifo(self):
        engine, mc, image, _ = make_controller()
        order = []
        for i in range(4):
            mc.write_data_line(i * CACHE_LINE_BYTES, LINE,
                               on_persist=lambda i=i: order.append(i))
        engine.run()
        assert order == [0, 1, 2, 3]

    def test_write_queue_backpressure_retries_transparently(self):
        engine, mc, image, _ = make_controller(write_queue_depth=2)
        n = 12
        done = []
        for i in range(n):
            mc.write_data_line(i * CACHE_LINE_BYTES, LINE,
                               on_persist=lambda i=i: done.append(i))
        engine.run()
        assert sorted(done) == list(range(n))
        for i in range(n):
            assert image.durable_line(i * CACHE_LINE_BYTES) == LINE
        full_events = mc.data_channel.stats.get("write_queue_full_events")
        assert full_events > 0, "backpressure path never exercised"


class TestChannels:
    def test_single_channel_shares_data_and_log(self):
        _, mc, _, _ = make_controller(channels_per_controller=1)
        assert mc.data_channel is mc.log_channel

    def test_two_channels_segregate_log_traffic(self):
        engine, mc, _, _ = make_controller(channels_per_controller=2)
        assert mc.data_channel is not mc.log_channel
        mc.write_log_line(mc.layout.log_base, LINE)
        engine.run()
        assert mc.log_channel.stats.get(
            f"{AccessKind.LOG_WRITE.value}_count") == 1
        assert mc.data_channel.stats.get(
            f"{AccessKind.LOG_WRITE.value}_count") == 0


class TestCrash:
    def test_crash_drops_queued_writes(self):
        engine, mc, image, _ = make_controller()
        acked = []
        for i in range(6):
            mc.write_data_line(i * CACHE_LINE_BYTES, LINE,
                               on_persist=lambda: acked.append(1))
        # Crash immediately: nothing has had time to persist.
        dropped = mc.crash()
        engine.run()
        assert dropped > 0
        assert not acked
        assert image.durable_line(0) != LINE
