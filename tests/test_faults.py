"""Fault-injection subsystem: models, injector, recovery analytics.

The headline assertions mirror the subsystem's contract:

* partial failures that only *remove* durable state (single-controller
  loss, torn log writes) still pass the golden-model differential check;
* failures that destroy information recovery needs (ADR truncation,
  log-region corruption) are *detected* by checksum validation, never
  silently acted on — including across the crash-during-recovery path;
* the torn-write model is provably non-vacuous: a torn header is
  rejected with ``checksum_rejected`` counted, both at the image level
  (deterministically) and end-to-end through the simulator;
* every crash/fault/litmus outcome carries a populated
  :class:`~repro.faults.analytics.RecoveryCost`.
"""

import json

import pytest

from helpers import build_system
from repro.atom import adr, recovery
from repro.atom.record import FLAG_VALID, RecordHeader
from repro.common.errors import ConfigError, RecoveryError
from repro.common.units import CACHE_LINE_BYTES
from repro.config import Design
from repro.faults.analytics import RecoveryCost
from repro.faults.models import (
    FAULT_MODELS, AdrTruncation, ControllerLoss, FaultInjector, LogCorruption,
    TornLogWrite, default_fault_models, fault_from_dict,
)
from repro.faults.sweep import (
    FaultSpec, execute_fault_point, fault_grid, fault_sweep,
)
from repro.harness.cache import ResultCache
from repro.harness.campaign import Campaign, CrashSpec, execute_crash_point
from repro.harness.testbed import crash_run
from repro.mem.layout import RecordAddress


class TestFaultModelCodec:
    def test_every_model_roundtrips(self):
        for model in default_fault_models():
            clone = fault_from_dict(model.to_dict())
            assert clone == model
            assert clone.to_dict() == model.to_dict()

    def test_registry_covers_the_required_models(self):
        assert set(FAULT_MODELS) >= {
            "controller-loss", "torn-log-write", "adr-truncation",
            "log-corruption",
        }

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError, match="unknown fault model"):
            fault_from_dict({"kind": "meteor-strike"})

    def test_bad_parameters_rejected(self):
        with pytest.raises(ConfigError, match="bad torn-log-write"):
            fault_from_dict({"kind": "torn-log-write", "bogus": 1})

    def test_degenerate_parameters_rejected(self):
        # 0 torn bytes = a dropped write, 64 = a completed one; a 0-line
        # ADR budget is indistinguishable from "never flushed".  All
        # would mis-mark points as applied (or undetectable) — refuse.
        for payload in (
            {"kind": "torn-log-write", "prefix_bytes": 0},
            {"kind": "torn-log-write", "prefix_bytes": 64},
            {"kind": "adr-truncation", "lines": 0},
            {"kind": "log-corruption", "flip_bytes": 0},
        ):
            with pytest.raises(ConfigError):
                fault_from_dict(payload)

    def test_applicability(self):
        assert ControllerLoss().applicable(Design.REDO)
        assert ControllerLoss().applicable(Design.NON_ATOMIC)
        for model in (TornLogWrite(), AdrTruncation(), LogCorruption()):
            assert model.applicable(Design.ATOM_OPT)
            assert model.applicable(Design.BASE)
            assert not model.applicable(Design.REDO)
            assert not model.applicable(Design.NON_ATOMIC)

    def test_grid_drops_inapplicable_cells(self):
        specs = fault_grid(designs=[Design.REDO], crash_cycles=[5000])
        kinds = {s.fault["kind"] for s in specs}
        # The undo-log models (torn-log-write, adr-truncation,
        # log-corruption) drop out for REDO; the media and loss models
        # apply to every design.
        assert kinds == {"controller-loss", "correlated-loss",
                         "torn-data-write", "bit-rot"}


class TestTornSeed:
    def test_prefix_is_deterministic_and_in_range(self):
        from repro.faults.models import torn_prefix_from_seed

        for seed in range(50):
            prefix = torn_prefix_from_seed(seed)
            assert 1 <= prefix < CACHE_LINE_BYTES
            assert prefix == torn_prefix_from_seed(seed)
        # The derivation actually spreads over the range (hash(), which
        # would be salted per interpreter, is exactly what this avoids).
        assert len({torn_prefix_from_seed(s) for s in range(50)}) > 10

    def test_seeded_model_derives_prefix_bytes(self):
        from repro.faults.models import torn_prefix_from_seed

        model = TornLogWrite(prefix_seed=11)
        assert model.prefix_bytes == torn_prefix_from_seed(11)
        assert TornLogWrite(prefix_seed=11) == model

    def test_seeded_model_roundtrips_and_keys_the_cache(self):
        a = TornLogWrite(prefix_seed=1)
        b = TornLogWrite(prefix_seed=2)
        clone = fault_from_dict(a.to_dict())
        assert clone == a
        assert clone.prefix_bytes == a.prefix_bytes
        # Different seeds -> different dicts -> different cache keys,
        # even in the (possible) event the derived lengths collide.
        assert a.to_dict() != b.to_dict()

    def test_apply_torn_seed_replaces_only_torn_models(self):
        from repro.faults.cli import apply_torn_seed
        from repro.faults.models import MultiFault, torn_prefix_from_seed

        plain = ControllerLoss()
        assert apply_torn_seed(plain, 5) is plain

        torn = TornLogWrite(controller=1)
        seeded = apply_torn_seed(torn, 5)
        assert seeded.prefix_seed == 5
        assert seeded.controller == 1
        assert seeded.prefix_bytes == torn_prefix_from_seed(5)

        combo = MultiFault(models=[ControllerLoss(), TornLogWrite()])
        seeded_combo = apply_torn_seed(combo, 5)
        assert seeded_combo is not combo
        assert seeded_combo.models[0] is combo.models[0]
        assert seeded_combo.models[1].prefix_seed == 5

        torn_free = MultiFault(models=[ControllerLoss(),
                                       AdrTruncation()])
        assert apply_torn_seed(torn_free, 5) is torn_free

    def test_cli_torn_seed_without_torn_model_errors(self, capsys):
        from repro.faults.cli import main

        with pytest.raises(SystemExit):
            main(["--faults", "controller-loss", "--torn-seed", "3"])
        assert ("requires a torn-log-write or torn-data-write model"
                in capsys.readouterr().err)

    def test_cli_torn_seed_runs_and_keys_artifact(self, tmp_path, capsys):
        from repro.faults.cli import main

        out_path = tmp_path / "verdicts.json"
        rc = main([
            "--designs", "atom-opt", "--workloads", "hash",
            "--crash-grid", "6000:6000:4000",
            "--faults", "torn-log-write", "--torn-seed", "9",
            "--cache-dir", str(tmp_path / "cache"),
            "--out", str(out_path),
        ])
        assert rc == 0
        assert out_path.exists()


def _stage_incomplete_update(system, *, start_seq=10):
    """LogM register state for one in-flight update owning bucket 0."""
    logm = system.controllers[0].logm
    logm.begin(0, 0)
    state = logm.aus[0]
    state.bucket_vec.set(0)
    state.current_bucket = 0
    state.current_record = 1
    state.update_start_seq = start_seq
    return state


class TestTornHeaderRecovery:
    """Image-level determinism: a torn header must be rejected, counted,
    and stay rejected across the double-crash (crash-during-recovery)
    path — its entries are never applied."""

    def _stage_torn_record(self, system):
        layout = system.layout
        rec = RecordAddress(0, 0, 0)
        committed = b"\xCC" * CACHE_LINE_BYTES
        system.image.persist(0x1000, committed)
        # Entry payload of the in-flight update (the would-be undo value).
        system.image.persist(layout.record_entry_addr(rec, 0),
                             b"\x0A" * CACHE_LINE_BYTES)
        # The bucket previously held a committed update's header...
        stale = RecordHeader(addresses=[0x2000], count=1, flags=FLAG_VALID,
                             owner=0, seq=0x04F00003)
        system.image.persist(layout.record_header_addr(rec), stale.encode())
        # ...and the new header's write tore at 60 bytes: new addresses,
        # count and checksum landed, the stale seq tail survived.
        fresh = RecordHeader(addresses=[0x1000], count=1, flags=FLAG_VALID,
                             owner=0, seq=10)
        system.image.persist_torn(layout.record_header_addr(rec),
                                  fresh.encode(), 60)
        _stage_incomplete_update(system, start_seq=10)
        adr.flush_on_power_failure(
            system.controllers[0].logm, system.image, system.layout
        )
        return committed

    def test_torn_header_rejected_and_counted(self, system):
        committed = self._stage_torn_record(system)
        report = recovery.recover(system.image, system.layout,
                                  system.config.log)
        assert report.cost.checksum_rejected == 1
        assert report.records_undone == 0
        # The entry payload was never applied over the data line.
        assert system.image.durable_read(0x1000, 64) == committed
        assert report.cost.lines_scanned > 0
        assert report.cost.cycles > 0

    def test_double_crash_during_recovery_converges(self, system):
        committed = self._stage_torn_record(system)
        # First recovery dies before clearing the ADR block...
        first = recovery.recover(system.image, system.layout,
                                 system.config.log, clear_adr=False)
        assert first.cost.checksum_rejected == 1
        digest = system.image.durable_digest()
        # ...the re-run must reject the torn header again, change
        # nothing, and this time complete.
        second = recovery.recover(system.image, system.layout,
                                  system.config.log, clear_adr=False)
        assert second.cost.checksum_rejected == 1
        assert second.records_undone == 0
        assert system.image.durable_digest() == digest
        assert system.image.durable_read(0x1000, 64) == committed
        final = recovery.recover(system.image, system.layout,
                                 system.config.log)
        assert final.cost.checksum_rejected == 1
        # ADR cleared: a fourth pass sees no state at all.
        quiet = recovery.recover(system.image, system.layout,
                                 system.config.log)
        assert quiet.controllers_with_state == 0

    def test_valid_reused_bucket_header_still_accepted(self, system):
        """Control: the same staging without the tear rolls back."""
        layout = system.layout
        rec = RecordAddress(0, 0, 0)
        system.image.persist(0x1000, b"\xCC" * CACHE_LINE_BYTES)
        old = b"\x0A" * CACHE_LINE_BYTES
        system.image.persist(layout.record_entry_addr(rec, 0), old)
        header = RecordHeader(addresses=[0x1000], count=1, flags=FLAG_VALID,
                              owner=0, seq=10)
        system.image.persist(layout.record_header_addr(rec), header.encode())
        _stage_incomplete_update(system, start_seq=10)
        adr.flush_on_power_failure(
            system.controllers[0].logm, system.image, system.layout
        )
        report = recovery.recover(system.image, system.layout,
                                  system.config.log)
        assert report.records_undone == 1
        assert report.cost.checksum_rejected == 0
        assert system.image.durable_read(0x1000, 64) == old


class TestAdrValidation:
    def test_truncated_flush_fails_validation(self, system):
        _stage_incomplete_update(system)
        blob = adr.flush_on_power_failure(
            system.controllers[0].logm, system.image, system.layout,
            max_lines=1,
        )
        assert len(blob) > CACHE_LINE_BYTES  # the budget actually cut it
        with pytest.raises(RecoveryError):
            adr.deserialize(system.image.durable_read(
                system.layout.adr_base(0), system.layout.adr_block_bytes
            ))

    def test_recovery_reports_invalid_adr_and_stays_idempotent(self, system):
        _stage_incomplete_update(system)
        adr.flush_on_power_failure(
            system.controllers[0].logm, system.image, system.layout,
            max_lines=1,
        )
        report = recovery.recover(system.image, system.layout,
                                  system.config.log)
        assert report.adr_invalid == 1
        assert report.cost.adr_invalid == 1
        assert report.cost.detections >= 1
        digest = system.image.durable_digest()
        again = recovery.recover(system.image, system.layout,
                                 system.config.log)
        assert again.adr_invalid == 0  # the block was cleared
        assert system.image.durable_digest() == digest

    def test_full_flush_still_roundtrips(self, system):
        state = _stage_incomplete_update(system)
        adr.flush_on_power_failure(
            system.controllers[0].logm, system.image, system.layout
        )
        images = adr.deserialize(system.image.durable_read(
            system.layout.adr_base(0), system.layout.adr_block_bytes
        ))
        assert images[0].bucket_vec.test(0)
        assert images[0].update_start_seq == state.update_start_seq


def _run_point(design, model, cycle, workload="hash"):
    return execute_fault_point(FaultSpec(
        design=design, workload=workload, fault=model.to_dict(),
        crash_cycle=cycle,
    ))


class TestFaultPoints:
    def test_controller_loss_preserves_consistency(self):
        outcome = _run_point(Design.ATOM_OPT, ControllerLoss(), 8_000)
        assert outcome.ok and outcome.applied
        assert outcome.recovery_cost["lines_scanned"] > 0
        assert outcome.recovery_cost["cycles"] > 0
        assert outcome.idempotent

    def test_controller_loss_drain_orders_inflight_before_queue(self):
        """Regression: the write already *in the device* at the cut is
        older than anything queued behind it.  Draining the queue while
        dropping the in-flight write persisted a record header whose
        entry line never landed — stale bytes from the bucket's previous
        epoch were then "undone" over live data.  These exact points
        exposed it."""
        for design, wl, cycle in ((Design.ATOM, "hash", 12_000),
                                  (Design.ATOM, "hash", 20_000),
                                  (Design.BASE, "rbtree", 4_000)):
            outcome = _run_point(design, ControllerLoss(), cycle, workload=wl)
            assert outcome.ok, f"{design.value}/{wl}@{cycle}: {outcome.error}"

    def test_controller_loss_on_redo(self):
        outcome = _run_point(Design.REDO, ControllerLoss(), 8_000)
        assert outcome.ok
        assert outcome.recovery_cost["cycles"] >= 0

    def test_torn_write_detected_end_to_end(self):
        """Non-vacuity: some injection point tears a *header* in flight
        and recovery provably rejects it (checksum detection > 0) while
        the differential check still passes."""
        detected = None
        for cycle in range(4_000, 17_000, 2_000):
            outcome = _run_point(Design.ATOM_OPT, TornLogWrite(), cycle)
            assert outcome.ok, outcome.error
            if outcome.detections:
                detected = outcome
                break
        assert detected is not None, "no injection point tore a header"
        assert "header" in detected.detail
        assert detected.recovery_cost["checksum_rejected"] >= 1

    def test_adr_truncation_detected(self):
        outcome = _run_point(Design.ATOM_OPT, AdrTruncation(), 8_000)
        assert outcome.ok, outcome.error
        assert outcome.applied
        assert outcome.detections >= 1
        assert outcome.recovery_cost["adr_invalid"] >= 1

    def test_log_corruption_detected(self):
        found = None
        for cycle in (8_000, 12_000, 16_000):
            outcome = _run_point(Design.ATOM_OPT, LogCorruption(), cycle)
            assert outcome.ok, outcome.error
            if outcome.applied:
                found = outcome
                break
        assert found is not None, "no durable header to corrupt"
        assert found.detections >= 1
        assert found.idempotent

    def test_inapplicable_point_is_a_clean_noop(self):
        outcome = _run_point(Design.REDO, TornLogWrite(), 8_000)
        assert outcome.ok and not outcome.applied
        assert "inapplicable" in outcome.detail


class TestRecoveryCostEverywhere:
    def test_crash_run_report_carries_cost(self):
        _, _, report = crash_run("hash", Design.ATOM_OPT, 8_000)
        assert isinstance(report.cost, RecoveryCost)
        assert report.cost.lines_scanned > 0
        assert report.cost.cycles > 0
        assert len(report.cost.per_controller) == 2  # scaled-down machine

    def test_crash_outcome_carries_cost(self):
        outcome = execute_crash_point(CrashSpec(
            design=Design.ATOM, workload="hash", crash_cycle=8_000,
        ))
        assert outcome.ok
        assert outcome.recovery_cost["lines_scanned"] > 0
        assert outcome.recovery_cost["cycles"] > 0

    def test_redo_crash_outcome_carries_cost(self):
        outcome = execute_crash_point(CrashSpec(
            design=Design.REDO, workload="hash", crash_cycle=8_000,
        ))
        assert outcome.ok
        assert "records_applied" in outcome.recovery_cost

    def test_litmus_outcome_carries_cost(self):
        from repro.litmus.explorer import LitmusPoint, execute_litmus_point
        from repro.litmus.spec import LitmusSpec, begin, commit, store

        spec = LitmusSpec(
            name="tiny-cost", description="",
            vars={"A": 0, "B": 1},
            cores=[[begin(), store("A", 1), store("B", 1), commit()]],
            forbidden=["A != B"],
        )
        out = execute_litmus_point(LitmusPoint(
            test=spec.to_dict(), design=Design.ATOM_OPT, crash_cycle=600,
        ))
        assert not out.error
        assert out.recovery_cost["lines_scanned"] > 0

    def test_cost_serialization_roundtrip(self):
        cost = RecoveryCost(lines_scanned=7, records_undone=2,
                            entries_undone=5, checksum_rejected=1,
                            cycles=1234, per_controller=[{"controller": 0}])
        assert RecoveryCost.from_dict(cost.to_dict()) == cost


class TestFaultSweepCampaign:
    def _small_grid(self):
        return fault_grid(
            designs=[Design.ATOM_OPT],
            workloads=["hash"],
            crash_cycles=[6_000, 10_000],
        )

    def test_sweep_runs_and_caches(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        campaign = Campaign(jobs=1, cache=cache)
        specs = self._small_grid()
        sweep = fault_sweep(campaign, specs)
        assert len(sweep.outcomes) == len(specs)
        assert not sweep.failures, sweep.render()
        computed = campaign.computed
        assert computed == len(specs)
        # Warm replay: everything served from the cache.
        again = Campaign(jobs=1, cache=ResultCache(tmp_path / "cache"))
        sweep2 = fault_sweep(again, specs)
        assert again.computed == 0
        assert [o.ok for o in sweep2.outcomes] == [o.ok for o in sweep.outcomes]

    def test_render_and_json_shape(self, tmp_path):
        campaign = Campaign(jobs=1, cache=ResultCache(tmp_path / "c"))
        sweep = fault_sweep(campaign, self._small_grid())
        text = sweep.render()
        assert "Faults:" in text and "verdict" in text
        payload = sweep.to_json()
        from repro.faults.models import FAULT_MODELS

        assert payload["summary"]["cells"] == len(FAULT_MODELS)
        for cell in payload["cells"]:
            assert cell["status"] in ("ok", "detected", "contained",
                                      "silent", "vacuous", "FAIL")
            assert "recovery_cost" in cell
            assert cell["recovery_cost"]["lines_scanned"] >= 0


class TestLitmusFaultAxis:
    def test_fault_axis_adds_cells_and_passes(self, tmp_path):
        from repro.litmus.explorer import explore
        from repro.litmus.spec import LitmusSpec, begin, commit, store

        spec = LitmusSpec(
            name="tiny-fault-axis", description="",
            vars={"A": 0, "B": 1},
            cores=[[begin(), store("A", 1), store("B", 1), commit()]],
            forbidden=["A != B"],
        )
        campaign = Campaign(jobs=1, cache=ResultCache(tmp_path / "c"))
        report = explore(campaign, tests=[spec], designs=[Design.ATOM_OPT],
                         points=2, faults=[ControllerLoss()])
        faults_seen = {c.fault for c in report.cells}
        assert faults_seen == {"power-loss", "controller-loss"}
        assert not report.failures, report.render()
        assert "controller-loss" in report.render()
        assert {c["fault"] for c in report.to_json()["cells"]} == faults_seen

    def test_detection_only_models_rejected(self):
        from repro.litmus.explorer import explore

        with pytest.raises(ConfigError, match="detection-only"):
            explore(Campaign(jobs=1), designs=[Design.ATOM_OPT],
                    faults=[AdrTruncation()])


class TestCli:
    def test_faults_list(self, capsys):
        from repro.faults.cli import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for kind in FAULT_MODELS:
            assert kind in out

    def test_faults_run_writes_artifact(self, tmp_path, capsys):
        from repro.faults.cli import main

        out_path = tmp_path / "verdicts.json"
        rc = main([
            "--designs", "atom-opt", "--workloads", "hash",
            "--crash-grid", "6000:10000:4000",
            "--only", "controller",
            "--cache-dir", str(tmp_path / "cache"),
            "--out", str(out_path),
        ])
        assert rc == 0
        payload = json.loads(out_path.read_text())
        assert payload["summary"]["failures"] == 0
        assert payload["cells"][0]["fault"] == "controller-loss"

    def test_faults_artifact_carries_recovery_figure(self, tmp_path):
        from repro.faults.cli import main

        out_path = tmp_path / "verdicts.json"
        rc = main([
            "--designs", "atom-opt", "--workloads", "hash",
            "--crash-grid", "6000:10000:4000",
            "--only", "controller",
            "--cache-dir", str(tmp_path / "cache"),
            "--out", str(out_path),
        ])
        assert rc == 0
        payload = json.loads(out_path.read_text())
        assert payload["kind"] == "faults"
        figure = payload["recovery_figure"]
        assert list(figure) == ["atom-opt"]
        assert [s["crash_cycle"] for s in figure["atom-opt"]["series"]] \
            == [6000, 10000]

    def test_trace_point_selects_a_matrix_point(self, tmp_path, capsys):
        from repro.faults.cli import main
        from repro.obs.trace import validate_chrome_trace

        trace_path = tmp_path / "fault_trace.json"
        rc = main([
            "--designs", "atom-opt", "--workloads", "hash",
            "--crash-grid", "6000:10000:4000",
            "--only", "controller", "--no-cache",
            "--out", str(tmp_path / "verdicts.json"),
            "--trace", str(trace_path), "--trace-point", "1",
        ])
        assert rc == 0
        assert "fault point 1" in capsys.readouterr().err
        payload = json.loads(trace_path.read_text())
        assert validate_chrome_trace(payload["traceEvents"]) == []

    def test_trace_point_requires_trace(self):
        from repro.faults.cli import main

        with pytest.raises(SystemExit):
            main(["--trace-point", "1",
                  "--designs", "atom-opt", "--workloads", "hash",
                  "--only", "controller", "--no-cache"])

    def test_trace_point_out_of_range_errors(self, tmp_path):
        from repro.faults.cli import main

        with pytest.raises(SystemExit):
            main(["--designs", "atom-opt", "--workloads", "hash",
                  "--crash-grid", "6000:10000:4000",
                  "--only", "controller", "--no-cache",
                  "--trace", str(tmp_path / "t.json"),
                  "--trace-point", "99"])

    def test_faults_unknown_model_errors(self):
        from repro.faults.cli import main

        with pytest.raises(SystemExit):
            main(["--faults", "meteor-strike"])

    def test_select_only_filter(self):
        from repro.harness.report import select_only

        names = ["torn-log-write", "controller-loss", "log-corruption"]
        assert select_only(names, "torn") == ["torn-log-write"]
        assert select_only(names, "LOG") == ["torn-log-write",
                                             "log-corruption"]
        # Exact name wins even when it is a substring of another.
        assert select_only(["a", "ab"], "a") == ["a"]
        assert select_only(names, "zzz") == []

    def test_harness_listing_names_faults(self, capsys):
        from repro.harness.__main__ import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "faults" in out and "torn-log-write" in out

    def test_perf_missing_baseline_fails_fast(self, capsys):
        from repro.harness.perf import main

        rc = main(["--baseline", "/nonexistent/baseline.json"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "cannot read baseline" in err

    def test_perf_corrupt_baseline_fails_fast(self, tmp_path, capsys):
        from repro.harness.perf import main

        bad = tmp_path / "baseline.json"
        bad.write_text("{not json")
        assert main(["--baseline", str(bad)]) == 2
        assert "cannot read baseline" in capsys.readouterr().err

    def test_perf_wrong_shape_baseline_fails_fast(self, tmp_path, capsys):
        from repro.harness.perf import main

        bad = tmp_path / "baseline.json"
        bad.write_text(json.dumps({"schema": 1}))
        assert main(["--baseline", str(bad)]) == 2
        assert "missing aggregate" in capsys.readouterr().err

    def test_litmus_only_filter_unknown_errors(self):
        from repro.litmus.cli import main

        with pytest.raises(SystemExit):
            main(["--only", "zzz-no-such-test", "--points", "1"])


class TestMultiFault:
    """Composite ``a+b`` models: codec, contracts, end-to-end injection."""

    def test_plus_kind_builds_and_roundtrips(self):
        from repro.faults.models import MultiFault

        model = fault_from_dict({"kind": "controller-loss+torn-log-write"})
        assert isinstance(model, MultiFault)
        assert model.kind == "controller-loss+torn-log-write"
        assert [m.kind for m in model.models] == ["controller-loss",
                                                  "torn-log-write"]
        clone = fault_from_dict(model.to_dict())
        assert clone.to_dict() == model.to_dict()

    def test_member_parameters_survive_the_roundtrip(self):
        from repro.faults.models import MultiFault

        model = MultiFault(models=[ControllerLoss(controller=1),
                                   TornLogWrite(prefix_bytes=17)])
        clone = fault_from_dict(model.to_dict())
        assert clone.models[0].controller == 1
        assert clone.models[1].prefix_bytes == 17

    def test_contract_axes_aggregate_over_members(self):
        from repro.faults.models import MultiFault

        consistent = MultiFault(models=[ControllerLoss(), TornLogWrite()])
        assert consistent.preserves_consistency
        assert not consistent.expects_detection
        detecting = MultiFault(models=[ControllerLoss(), AdrTruncation()])
        assert not detecting.preserves_consistency
        assert detecting.expects_detection

    def test_applicable_only_where_every_member_applies(self):
        from repro.faults.models import MultiFault

        model = MultiFault(models=[ControllerLoss(), TornLogWrite()])
        assert model.applicable(Design.ATOM_OPT)
        assert not model.applicable(Design.REDO)  # torn needs undo logs

    def test_malformed_composites_rejected(self):
        from repro.faults.models import MultiFault

        with pytest.raises(ConfigError, match="at least two"):
            fault_from_dict({"kind": "controller-loss+"})
        with pytest.raises(ConfigError, match="duplicate member"):
            fault_from_dict({"kind": "controller-loss+controller-loss"})
        with pytest.raises(ConfigError, match="cannot themselves"):
            MultiFault(models=[
                ControllerLoss(),
                MultiFault(models=[TornLogWrite(), AdrTruncation()]),
            ])
        with pytest.raises(ConfigError, match="no flat parameters"):
            fault_from_dict({"kind": "controller-loss+torn-log-write",
                             "controller": 1})

    def test_injector_flattens_members_onto_the_hooks(self):
        from repro.faults.models import MultiFault

        injector = FaultInjector(MultiFault(models=[
            ControllerLoss(controller=1), AdrTruncation(controller=0),
        ]))
        assert not injector.controller_survives(1)
        assert injector.controller_survives(0)
        assert injector.wants_drain()
        assert injector.adr_budget_lines(0) == 1
        assert injector.adr_budget_lines(1) is None

    def test_detail_accumulates_one_clause_per_member(self):
        injector = FaultInjector(ControllerLoss())
        injector._mark("first thing")
        injector._mark("second thing")
        assert injector.applied
        assert injector.detail == "first thing; second thing"

    def test_composite_end_to_end_applies_both_members(self):
        # A cycle where the *lost* controller has a log write in flight:
        # survivors drain cleanly, so their FIFOs are stale and exempt
        # from tearing — only the lost controller's wires can tear.
        out = execute_fault_point(FaultSpec(
            design=Design.ATOM, workload="queue",
            fault={"kind": "controller-loss+torn-log-write"},
            crash_cycle=5_000,
        ))
        assert out.ok, out.detail
        assert out.applied
        # Both members left their clause in the detail.
        assert "controller 0" in out.detail and "tore" in out.detail

    def test_cli_rejects_explicitly_requested_inapplicable_models(
            self, capsys):
        from repro.faults.cli import main

        with pytest.raises(SystemExit):
            main(["--faults", "torn-log-write", "--designs", "non-atomic"])
        assert "applies to none" in capsys.readouterr().err

    def test_cli_warns_and_drops_from_the_default_set(self, tmp_path,
                                                      capsys):
        from repro.faults.cli import main

        rc = main(["--designs", "redo", "--workloads", "hash",
                   "--crash-grid", "6000:10000:4000", "--no-cache",
                   "--out", str(tmp_path / "v.json")])
        assert rc == 0
        captured = capsys.readouterr()
        assert "dropping from the model set" in captured.err
        assert "controller-loss" in captured.out


class TestDrainSemantics:
    def test_surviving_drain_persists_queued_writes(self):
        """A controller-loss crash leaves survivors' queues empty and
        their queued writes durable."""
        system = build_system(design=Design.ATOM_OPT)
        injector = FaultInjector(ControllerLoss(controller=0))
        injector.install(system)
        from repro.workloads import make_workload

        workload = make_workload("hash", system, txns_per_thread=8,
                                 initial_items=12, threads=4, seed=7)
        workload.setup()
        system.start_threads(workload.threads())
        system.crash_at(8_000)
        system.run(max_cycles=30_000_000)
        if not system.crashed:
            system.crash()
        for mc in system.controllers:
            for ch in mc.channels:
                assert ch.pending_writes() == 0
        system.recover()
        workload.verify_durable()
