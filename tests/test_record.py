"""Log record format (LEC): header encode/decode, open-record register."""

from hypothesis import given
from hypothesis import strategies as st

from repro.atom.record import FLAG_VALID, OpenRecord, RecordHeader


class TestHeaderCodec:
    def test_roundtrip(self):
        header = RecordHeader(
            addresses=[0x40, 0x80, 0xC0], count=3,
            flags=FLAG_VALID, owner=5, seq=42,
        )
        line = header.encode()
        assert len(line) == 64
        back = RecordHeader.decode(line)
        assert back.addresses == [0x40, 0x80, 0xC0]
        assert back.count == 3
        assert back.owner == 5
        assert back.seq == 42
        assert back.valid

    def test_zero_line_is_invalid(self):
        header = RecordHeader.decode(bytes(64))
        assert not header.valid

    def test_count_zero_is_invalid_even_with_flag(self):
        header = RecordHeader(addresses=[], count=0, flags=FLAG_VALID,
                              owner=0, seq=0)
        assert not RecordHeader.decode(header.encode()).valid

    def test_garbage_count_is_clamped(self):
        line = bytearray(64)
        line[56] = 200  # absurd count from stale data
        header = RecordHeader.decode(bytes(line))
        assert header.count <= 7

    @given(
        st.lists(st.integers(min_value=0, max_value=2**40).map(
            lambda a: a & ~63), min_size=1, max_size=7),
        st.integers(min_value=0, max_value=255),  # u8 owner stamp
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_roundtrip_property(self, addresses, owner, seq):
        header = RecordHeader(addresses=list(addresses),
                              count=len(addresses), flags=FLAG_VALID,
                              owner=owner, seq=seq)
        back = RecordHeader.decode(header.encode())
        assert back.addresses == list(addresses)
        assert back.owner == owner and back.seq == seq and back.valid
        assert back.checksum_ok and back.trustworthy

    def test_torn_prefix_over_old_header_fails_checksum(self):
        """A torn write (new prefix, stale tail) must never verify."""
        old = RecordHeader(addresses=[0x1000], count=1, flags=FLAG_VALID,
                           owner=2, seq=0x99AABBCC).encode()
        new = RecordHeader(addresses=[0x2000, 0x3000], count=2,
                           flags=FLAG_VALID, owner=2, seq=0x11223344).encode()
        for prefix in (8, 40, 56, 60, 63):
            torn = new[:prefix] + old[prefix:]
            header = RecordHeader.decode(torn)
            assert not header.checksum_ok, f"prefix {prefix} verified"
            assert not header.trustworthy

    @given(st.integers(min_value=0, max_value=63),
           st.integers(min_value=1, max_value=255))
    def test_any_single_byte_corruption_fails_checksum(self, offset, xor):
        line = bytearray(RecordHeader(
            addresses=[0x1000, 0x2040], count=2, flags=FLAG_VALID,
            owner=1, seq=5,
        ).encode())
        line[offset] ^= xor
        assert not RecordHeader.decode(bytes(line)).trustworthy


class TestOpenRecord:
    def test_holds_tracks_locked_lines(self):
        record = OpenRecord(bucket=0, record=0, owner=1, seq=7)
        record.addresses.append(0x40)
        assert record.holds(0x40)
        assert not record.holds(0x80)

    def test_header_materialization(self):
        record = OpenRecord(bucket=2, record=3, owner=1, seq=9)
        record.addresses += [0x40, 0x80]
        header = record.header()
        assert header.count == 2
        assert header.seq == 9
        assert header.valid

    def test_all_data_persisted(self):
        record = OpenRecord(bucket=0, record=0, owner=0, seq=0)
        record.addresses += [0x40, 0x80]
        assert not record.all_data_persisted()
        record.data_persisted = 2
        assert record.all_data_persisted()
