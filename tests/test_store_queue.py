"""Store queue: occupancy, ordering, drain, backpressure."""

from repro.common.stats import Stats
from repro.cpu.store_queue import StoreEntry, StoreQueue
from repro.engine import Engine


def make_sq(capacity=8, drain_delay=5):
    engine = Engine()
    retired = []

    def execute(entry, on_retired):
        engine.after(drain_delay, on_retired)

    sq = StoreQueue(engine, capacity, execute, Stats().domain("sq"))
    return engine, sq, retired


class TestOccupancy:
    def test_slots_counted_in_words(self):
        _, sq, _ = make_sq(capacity=8)
        assert StoreEntry(addr=0, size=8).slots == 1
        assert StoreEntry(addr=0, size=64).slots == 8
        assert StoreEntry(addr=0, size=1).slots == 1

    def test_push_until_full(self):
        _, sq, _ = make_sq(capacity=2)
        assert sq.try_push(StoreEntry(addr=0, size=8))
        assert sq.try_push(StoreEntry(addr=8, size=8))
        assert not sq.try_push(StoreEntry(addr=16, size=8))

    def test_wide_entry_fills_queue(self):
        _, sq, _ = make_sq(capacity=8)
        assert sq.try_push(StoreEntry(addr=0, size=64))
        assert not sq.try_push(StoreEntry(addr=64, size=8))


class TestDrain:
    def test_stores_retire_in_order(self):
        engine, sq, _ = make_sq(capacity=16, drain_delay=3)
        entries = [StoreEntry(addr=i * 8, size=8) for i in range(4)]
        for entry in entries:
            sq.try_push(entry)
        engine.run()
        assert sq.empty()
        assert sq.stats.get("stores_retired") == 4

    def test_space_waiter_woken(self):
        engine, sq, _ = make_sq(capacity=1, drain_delay=3)
        sq.try_push(StoreEntry(addr=0, size=8))
        woken = []
        sq.when_space(lambda: woken.append(engine.now))
        engine.run()
        assert woken and woken[0] >= 3

    def test_when_empty_immediate_if_empty(self):
        engine, sq, _ = make_sq()
        fired = []
        sq.when_empty(lambda: fired.append(1))
        assert fired == [1]

    def test_when_empty_waits_for_drain(self):
        engine, sq, _ = make_sq(capacity=4, drain_delay=7)
        sq.try_push(StoreEntry(addr=0, size=8))
        fired = []
        sq.when_empty(lambda: fired.append(engine.now))
        assert not fired
        engine.run()
        assert fired and fired[0] >= 7

    def test_store_latency_accounted(self):
        engine, sq, _ = make_sq(capacity=4, drain_delay=10)
        sq.try_push(StoreEntry(addr=0, size=8))
        engine.run()
        assert sq.stats.get("store_latency_cycles") >= 10
