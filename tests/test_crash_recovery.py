"""Crash-injection tests: the atomic-durability contract end to end.

A crash at *any* cycle must leave the durable structures equal to the
golden model replayed over exactly the committed transactions — committed
updates survive in full, uncommitted ones vanish without a trace.  This
is the paper's qualitative headline, exercised across workloads, undo
designs and (hypothesis-chosen) crash points.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import crash_run
from repro.config import Design

WORKLOADS = ["hash", "queue", "rbtree", "btree", "sdg", "sps"]
UNDO = [Design.BASE, Design.ATOM, Design.ATOM_OPT]


class TestCrashMatrix:
    @pytest.mark.parametrize("name", WORKLOADS)
    @pytest.mark.parametrize("design", UNDO)
    def test_mid_run_crash(self, name, design):
        system, workload, _ = crash_run(name, design, crash_cycle=12_000)
        # The run was genuinely interrupted (not all txns committed).
        assert workload.commits < 4 * 8

    @pytest.mark.parametrize("name", WORKLOADS)
    def test_crash_after_completion_rolls_back_nothing(self, name):
        system, workload, report = crash_run(
            name, Design.ATOM_OPT, crash_cycle=None
        )
        assert workload.commits == 4 * 8
        assert report.updates_rolled_back == 0

    @pytest.mark.parametrize("design", UNDO)
    def test_very_early_crash_preserves_setup(self, design):
        system, workload, _ = crash_run("hash", design, crash_cycle=50)
        assert workload.commits == 0

    def test_large_entries_crash(self):
        crash_run("queue", Design.ATOM_OPT, crash_cycle=20_000,
                  entry_bytes=4096, capacity=64)


class TestRedoCrash:
    @pytest.mark.parametrize("crash_cycle", [5_000, 15_000, 40_000])
    def test_redo_recovery_replays_committed(self, crash_cycle):
        system, workload, _ = crash_run("hash", Design.REDO, crash_cycle)


class TestHypothesisCrashPoints:
    @settings(max_examples=12, deadline=None)
    @given(
        crash_cycle=st.integers(min_value=100, max_value=40_000),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_rbtree_any_crash_point(self, crash_cycle, seed):
        crash_run("rbtree", Design.ATOM_OPT, crash_cycle, seed=seed)

    @settings(max_examples=8, deadline=None)
    @given(
        crash_cycle=st.integers(min_value=100, max_value=40_000),
        design=st.sampled_from(UNDO),
    )
    def test_hash_any_crash_point_any_design(self, crash_cycle, design):
        crash_run("hash", design, crash_cycle)

    @settings(max_examples=8, deadline=None)
    @given(crash_cycle=st.integers(min_value=100, max_value=60_000))
    def test_btree_any_crash_point(self, crash_cycle):
        crash_run("btree", Design.ATOM_OPT, crash_cycle)


class TestRecoveredSystemContinues:
    def test_state_is_consistent_for_a_second_run(self):
        """After recovery, a fresh system over the surviving image can
        run further transactions (the recovered state is a valid start
        state)."""
        system, workload, _ = crash_run("hash", Design.ATOM_OPT, 12_000)
        # Golden state equals durable state; reusing the durable image
        # as the volatile start state must verify cleanly again.
        system.image.crash()  # re-sync volatile to durable
        workload.verify_durable()
