"""PMem helper API, DirectDriver, and System lifecycle."""

import pytest

from helpers import build_system
from repro.common.errors import SimulationError
from repro.config import Design
from repro.cpu import ops
from repro.mem.image import MemoryImage
from repro.runtime.api import ImageReader, PMem, VolatileReader
from repro.runtime.driver import DirectDriver


class TestPMemHelpers:
    def test_u64_roundtrip(self):
        image = MemoryImage(4096)
        driver = DirectDriver(image)
        driver.run(PMem.store_u64(64, 0xABCDEF))

        def read():
            value = yield from PMem.load_u64(64)
            return value

        assert driver.run(read()) == 0xABCDEF

    def test_bytes_roundtrip(self):
        image = MemoryImage(4096)
        driver = DirectDriver(image)
        driver.run(PMem.store_bytes(100, b"payload"))

        def read():
            data = yield from PMem.load_bytes(100, 7)
            return data

        assert driver.run(read()) == b"payload"

    def test_memset(self):
        image = MemoryImage(4096)
        DirectDriver(image).run(PMem.memset(0, 128, 0xAA))
        assert image.read(0, 128) == b"\xAA" * 128

    def test_atomic_markers_are_ops(self):
        gen = PMem.atomic_begin()
        assert isinstance(next(gen), ops.AtomicBegin)
        gen = PMem.atomic_end(info="x")
        op = next(gen)
        assert isinstance(op, ops.AtomicEnd) and op.info == "x"


class TestDirectDriver:
    def test_durable_mode_persists(self):
        image = MemoryImage(4096)
        DirectDriver(image, durable=True).run(PMem.store_u64(0, 7))
        assert image.durable_read_u64(0) == 7

    def test_volatile_mode_does_not_persist(self):
        image = MemoryImage(4096)
        DirectDriver(image, durable=False).run(PMem.store_u64(0, 7))
        assert image.read_u64(0) == 7
        assert image.durable_read_u64(0) == 0

    def test_commit_callback(self):
        image = MemoryImage(4096)
        driver = DirectDriver(image)
        commits = []
        driver.on_commit = commits.append

        def txn():
            yield ops.AtomicBegin()
            yield from PMem.store_u64(0, 1)
            yield ops.AtomicEnd(info="done")

        driver.run(txn())
        assert commits == ["done"]

    def test_returns_stop_value(self):
        image = MemoryImage(4096)

        def gen():
            yield ops.Compute(1)
            return 42

        assert DirectDriver(image).run(gen()) == 42

    def test_ops_counted(self):
        image = MemoryImage(4096)
        driver = DirectDriver(image)
        driver.run(PMem.store_u64(0, 1))
        assert driver.ops_executed == 1


class TestReaders:
    def test_image_reader_sees_durable_only(self):
        image = MemoryImage(4096)
        image.write(0, (9).to_bytes(8, "little"))
        assert ImageReader(image).load_u64(0) == 0
        assert VolatileReader(image).load_u64(0) == 9


class TestSystemLifecycle:
    def test_too_many_threads_rejected(self, system):
        def thread():
            yield ops.Compute(1)

        with pytest.raises(SimulationError):
            system.start_threads([thread() for _ in range(5)])

    def test_unused_cores_idle(self, system):
        def thread():
            yield ops.Compute(10)

        system.start_threads([thread()])
        system.run(max_cycles=100_000)
        assert system.all_done()

    def test_result_summary(self, system):
        def thread():
            yield ops.AtomicBegin()
            yield ops.Store(0x100, b"x" * 8)
            yield ops.AtomicEnd()

        system.start_threads([thread()])
        system.run(max_cycles=1_000_000)
        result = system.result()
        assert result.txns_committed == 1
        assert result.cycles > 0
        assert result.design is Design.ATOM_OPT
        assert result.txn_throughput > 0

    def test_deadlock_detection(self, system):
        def thread():
            # Acquire a lock nobody releases... then wait on it again
            # from the same core is fine; instead simulate a lost wakeup
            # by waiting on SQ space that never comes.  Simplest genuine
            # deadlock: a thread that locks twice (self-deadlock).
            yield ops.Lock(1)
            yield ops.Lock(1)

        system.start_threads([thread()])
        with pytest.raises(SimulationError):
            system.run()

    def test_repr(self, system):
        assert "atom-opt" in repr(system)
