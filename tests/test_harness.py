"""Harness plumbing: runner, report rendering, experiment registry."""

import pytest

from repro.config import Design
from repro.harness.experiments import EXPERIMENTS, run_experiment
from repro.harness.report import format_markdown, format_table, gmean
from repro.harness.runner import RunSpec, build_config, run_spec


class TestReport:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [["x", 1.5], ["yy", 2.0]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "1.50" in out

    def test_format_table_with_title(self):
        out = format_table(["a"], [["x"]], title="T")
        assert out.splitlines()[0] == "T"

    def test_format_markdown(self):
        out = format_markdown(["a", "b"], [["x", 1.0]])
        assert out.splitlines()[0] == "| a | b |"
        assert "| x | 1.00 |" in out

    def test_gmean(self):
        assert gmean([1.0, 4.0]) == pytest.approx(2.0)
        assert gmean([2.0]) == pytest.approx(2.0)

    def test_gmean_empty_is_nan(self):
        import math
        assert math.isnan(gmean([]))

    def test_large_numbers_use_thousands(self):
        out = format_table(["v"], [[123456.7]])
        assert "123,457" in out


class TestRunner:
    def test_build_config_applies_spec(self):
        spec = RunSpec(design=Design.ATOM, workload="hash", num_cores=8,
                       latency_multiplier=5.0, channels=2)
        cfg = build_config(spec)
        assert cfg.design is Design.ATOM
        assert cfg.cores.num_cores == 8
        assert cfg.memory.latency_multiplier == 5.0
        assert cfg.memory.channels_per_controller == 2

    def test_with_design(self):
        spec = RunSpec(design=Design.BASE, workload="hash")
        other = spec.with_design(Design.REDO)
        assert other.design is Design.REDO
        assert other.workload == "hash"

    def test_tiny_run_produces_measurements(self):
        spec = RunSpec(
            design=Design.ATOM_OPT, workload="hash", num_cores=4,
            txns_per_thread=4, warmup_per_thread=1, initial_items=8,
        )
        result = run_spec(spec)
        assert result.txns == 3 * 4
        assert result.throughput > 0
        assert result.cycles > 0
        assert result.log_entries > 0

    def test_redo_counts_word_entries(self):
        spec = RunSpec(
            design=Design.REDO, workload="hash", num_cores=4,
            txns_per_thread=3, warmup_per_thread=1, initial_items=8,
        )
        result = run_spec(spec)
        assert result.log_entries > 0


class TestRegistry:
    def test_every_figure_and_table_registered(self):
        assert {"fig5a", "fig5b", "fig6", "table3", "fig7", "fig8",
                "table4", "ablations"} <= set(EXPERIMENTS)

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")


class TestTestbedBuilder:
    """build_system accepts a Design or a fully-built SystemConfig."""

    def test_accepts_design(self):
        from repro.harness.testbed import build_system

        system = build_system(Design.BASE, num_cores=2)
        assert system.config.design is Design.BASE

    def test_accepts_prebuilt_config(self):
        from repro.config import SystemConfig
        from repro.harness.testbed import build_system, small_config

        cfg = small_config(Design.ATOM, num_cores=2)
        system = build_system(cfg)
        assert system.config is cfg
        assert len(system.cores) == 2

    def test_prebuilt_config_rejects_extra_knobs(self):
        from repro.harness.testbed import build_system, small_config

        cfg = small_config(Design.ATOM, num_cores=2)
        with pytest.raises(TypeError):
            build_system(cfg, num_cores=8)


class TestWorkloadAliases:
    """Module-name aliases resolve to the Table II classes."""

    def test_module_name_aliases(self):
        from repro.harness.testbed import build_system
        from repro.workloads import make_workload
        from repro.workloads.hashtable import HashTableWorkload

        system = build_system(Design.BASE, num_cores=2)
        workload = make_workload("hashtable", system, txns_per_thread=1,
                                 initial_items=2, threads=1)
        assert type(workload) is HashTableWorkload
        workload = make_workload("bplustree", system, txns_per_thread=1,
                                 initial_items=2, threads=1)
        assert type(workload).name == "btree"

    def test_unknown_workload_error_lists_aliases_and_keys(self):
        from repro.common.errors import WorkloadError
        from repro.harness.testbed import build_system
        from repro.workloads import make_workload

        system = build_system(Design.BASE, num_cores=2)
        with pytest.raises(WorkloadError) as err:
            make_workload("btrieve", system)
        message = str(err.value)
        assert "hash" in message and "hashtable" in message
        assert "btree" in message and "bplustree" in message


class TestCrashSweepCli:
    """``--crash-sweep`` flags added for the analytics layer."""

    ARGS = ["--crash-sweep", "--workloads", "hash",
            "--designs", "atom-opt", "--crash-grid", "6000:14000:4000",
            "--no-cache"]

    def test_out_writes_artifact_with_recovery_figure(self, tmp_path,
                                                      capsys):
        import json

        from repro.harness.__main__ import main

        out = tmp_path / "crash.json"
        assert main(self.ARGS + ["--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["kind"] == "crash-sweep"
        assert payload["summary"]["failures"] == 0
        assert "campaign" in payload
        series = payload["recovery_figure"]["atom-opt"]["series"]
        assert [s["crash_cycle"] for s in series] == [6000, 10000, 14000]

    def test_trace_point_selects_a_sweep_point(self, tmp_path, capsys):
        import json

        from repro.harness.__main__ import main
        from repro.obs.trace import validate_chrome_trace

        trace = tmp_path / "trace.json"
        rc = main(self.ARGS + ["--trace", str(trace),
                               "--trace-point", "2"])
        assert rc == 0
        assert "sweep point 2" in capsys.readouterr().err
        payload = json.loads(trace.read_text())
        assert validate_chrome_trace(payload["traceEvents"]) == []

    def test_trace_point_requires_trace(self, tmp_path):
        from repro.harness.__main__ import main

        with pytest.raises(SystemExit):
            main(self.ARGS + ["--trace-point", "1"])

    def test_trace_point_out_of_range_errors(self, tmp_path):
        from repro.harness.__main__ import main

        with pytest.raises(SystemExit):
            main(self.ARGS + ["--trace", str(tmp_path / "t.json"),
                              "--trace-point", "99"])

    def test_out_requires_crash_sweep(self, tmp_path):
        from repro.harness.__main__ import main

        with pytest.raises(SystemExit):
            main(["--out", str(tmp_path / "x.json")])
