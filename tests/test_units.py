"""Address-math helpers."""

from hypothesis import given
from hypothesis import strategies as st

from repro.common import units


class TestLineMath:
    def test_line_of(self):
        assert units.line_of(0) == 0
        assert units.line_of(63) == 0
        assert units.line_of(64) == 64
        assert units.line_of(130) == 128

    def test_line_offset(self):
        assert units.line_offset(64) == 0
        assert units.line_offset(100) == 36

    def test_line_index(self):
        assert units.line_index(0) == 0
        assert units.line_index(640) == 10

    def test_align_up(self):
        assert units.align_up(0, 64) == 0
        assert units.align_up(1, 64) == 64
        assert units.align_up(64, 64) == 64
        assert units.align_up(65, 8) == 72

    def test_lines_spanned(self):
        assert units.lines_spanned(0, 0) == 0
        assert units.lines_spanned(0, 64) == 1
        assert units.lines_spanned(60, 8) == 2
        assert units.lines_spanned(0, 512) == 8


class TestSplitByLine:
    def test_single_chunk(self):
        assert units.split_by_line(8, 8) == [(8, 8)]

    def test_straddle(self):
        assert units.split_by_line(60, 8) == [(60, 4), (64, 4)]

    def test_full_payload(self):
        chunks = units.split_by_line(128, 512)
        assert len(chunks) == 8
        assert all(size == 64 for _, size in chunks)

    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=1, max_value=5_000))
    def test_chunks_cover_range_exactly(self, addr, size):
        chunks = units.split_by_line(addr, size)
        assert sum(s for _, s in chunks) == size
        assert chunks[0][0] == addr
        cursor = addr
        for a, s in chunks:
            assert a == cursor
            assert units.line_of(a) == units.line_of(a + s - 1)
            cursor += s

    @given(st.integers(min_value=0, max_value=10_000),
           st.integers(min_value=1, max_value=5_000))
    def test_chunk_count_matches_lines_spanned(self, addr, size):
        assert len(units.split_by_line(addr, size)) == units.lines_spanned(
            addr, size
        )


class TestThroughput:
    def test_cycles_to_seconds(self):
        assert units.cycles_to_seconds(2_000_000_000) == 1.0

    def test_throughput(self):
        assert units.throughput_per_second(10, 2_000_000_000) == 10.0

    def test_zero_cycles_is_zero(self):
        assert units.throughput_per_second(10, 0) == 0.0
