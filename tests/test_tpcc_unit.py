"""TPC-C substrate units: key packing, schema population, new-order."""

import random

from helpers import build_system
from repro.runtime.api import ImageReader
from repro.runtime.driver import DirectDriver
from repro.workloads.tpcc import schema as tpcc_schema
from repro.workloads.tpcc.neworder import (
    execute,
    generate_spec,
    stock_lock_ids,
)
from repro.workloads.tpcc.schema import TpccScale, TpccTables


def make_tables(items=20, customers=5):
    system = build_system(data_bytes=8 * 1024 * 1024)
    scale = TpccScale(items=items, customers_per_district=customers)
    tables = TpccTables(system.heap, scale, order=8)
    driver = DirectDriver(system.image, durable=True)
    driver.run(tables.create_all())
    driver.run(tables.populate(random.Random(1)))
    return system, tables, driver


class TestKeyPacking:
    def test_keys_are_injective(self):
        tables = TpccTables.__new__(TpccTables)  # key fns are static
        seen = set()
        for w in (1, 2):
            for d in range(1, 11):
                for o in (3001, 3002):
                    for n in range(1, 16):
                        key = tables.key_order_line(w, d, o, n)
                        assert key not in seen
                        seen.add(key)

    def test_stock_key(self):
        tables = TpccTables.__new__(TpccTables)
        assert tables.key_stock(1, 5) != tables.key_stock(2, 5)


class TestPopulation:
    def test_district_rows_initialized(self):
        system, tables, driver = make_tables()
        for d in range(1, 11):
            row = driver.run(tables.district.get(tables.key_wd(1, d)))
            assert row is not None
            next_o_id = driver.run(
                __import__("repro.runtime.api", fromlist=["PMem"])
                .PMem.load_u64(row + tpcc_schema.D_NEXT_O_ID)
            )
            assert next_o_id == 3001

    def test_items_and_stock_populated(self):
        system, tables, driver = make_tables(items=15)
        for i in (1, 7, 15):
            assert driver.run(tables.item.get(i)) is not None
            assert driver.run(tables.stock.get(tables.key_stock(1, i)))

    def test_rows_are_line_aligned(self):
        system, tables, driver = make_tables()
        row = driver.run(tables.warehouse.get(1))
        assert row % 64 == 0


class TestNewOrder:
    def test_spec_generation_in_bounds(self):
        scale = TpccScale(items=20, customers_per_district=5)
        rng = random.Random(3)
        for _ in range(50):
            spec = generate_spec(rng, terminal=0, scale=scale)
            assert 1 <= spec.d_id <= 10
            assert 1 <= spec.c_id <= 5
            assert 5 <= len(spec.lines) <= 15
            assert all(1 <= i <= 20 for i, _ in spec.lines)

    def test_stock_locks_sorted_unique(self):
        scale = TpccScale(items=20)
        spec = generate_spec(random.Random(5), 0, scale)
        locks = stock_lock_ids(TpccTables.__new__(TpccTables), spec)
        assert locks == sorted(set(locks))

    def test_execute_increments_next_o_id(self):
        system, tables, driver = make_tables()
        scale = tables.scale
        spec = generate_spec(random.Random(7), 0, scale)
        o_id = driver.run(execute(tables, spec))
        assert o_id == 3001
        o_id2 = driver.run(execute(tables, spec))
        assert o_id2 == 3002

    def test_execute_inserts_all_rows(self):
        system, tables, driver = make_tables()
        spec = generate_spec(random.Random(7), 0, tables.scale)
        o_id = driver.run(execute(tables, spec))
        d_key = tables.key_wd(spec.w_id, spec.d_id)
        reader = ImageReader(system.image)
        orders = tables.orders[d_key].walk_durable(reader)
        lines = tables.order_line[d_key].walk_durable(reader)
        o_key = tables.key_order(spec.w_id, spec.d_id, o_id)
        assert o_key in orders
        assert len(lines) == len(spec.lines)

    def test_stock_quantity_updated(self):
        system, tables, driver = make_tables()
        from repro.runtime.api import PMem
        spec = generate_spec(random.Random(7), 0, tables.scale)
        i_id, qty = spec.lines[0]
        s_row = driver.run(tables.stock.get(tables.key_stock(spec.w_id, i_id)))
        before = driver.run(PMem.load_u64(s_row + tpcc_schema.S_QUANTITY))
        driver.run(execute(tables, spec))
        after = driver.run(PMem.load_u64(s_row + tpcc_schema.S_QUANTITY))
        assert after != before

    def test_paper_scale_factors(self):
        paper = TpccScale.paper()
        assert paper.items == 100_000
        assert paper.customers_per_district == 3000
