"""Schema and non-perturbation net for the observability layer.

Every trace the :class:`~repro.obs.trace.Tracer` produces must be a
valid Chrome-trace event list: known phases, required fields,
non-negative integer timestamps in simulated cycles, matched async
begin/end pairs — including runs that end in a power failure, where
open transaction spans must be force-closed.  And tracing must never
perturb the machine: a traced + sampled run produces bit-identical
results to a plain one (the golden-digest test enforces the same
contract against the pinned reference values).
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.config import Design
from repro.harness.runner import RunSpec, run_spec
from repro.litmus.catalog import catalog_by_name
from repro.litmus.explorer import LitmusPoint, execute_litmus_point
from repro.obs.fabric import FabricTelemetry
from repro.obs.sample import StatSampler
from repro.obs.trace import Tracer, validate_chrome_trace

TINY = RunSpec(
    design=Design.ATOM_OPT, workload="hash", entry_bytes=256,
    num_cores=4, txns_per_thread=4, warmup_per_thread=0,
    initial_items=12, seed=11,
)


def traced_run(spec: RunSpec, interval: int = 500):
    """Run ``spec`` with a tracer + sampler installed."""
    tracer = Tracer()
    holder: dict = {}

    def instrument(system) -> None:
        tracer.install(system)
        holder["sampler"] = StatSampler(system, interval=interval).install()

    result = run_spec(spec, instrument=instrument)
    return result, tracer, holder["sampler"]


@pytest.mark.parametrize("design", list(Design), ids=lambda d: d.value)
class TestTraceSchema:
    def test_traced_run_is_valid_chrome_trace(self, design):
        spec = dataclasses.replace(TINY, design=design)
        result, tracer, sampler = traced_run(spec)
        sampler.emit_counters(tracer)
        payload = tracer.to_chrome_trace()
        events = payload["traceEvents"]
        assert events, "a completed run must produce trace events"
        assert validate_chrome_trace(events) == []
        # Non-metadata events are time-sorted (Perfetto expects it).
        stamps = [ev["ts"] for ev in events if ev["ph"] != "M"]
        assert stamps == sorted(stamps)
        # Every committed transaction opened and closed a lifecycle span.
        begins = sum(1 for ev in events
                     if ev["ph"] == "b" and ev.get("cat") == "txn")
        ends = sum(1 for ev in events
                   if ev["ph"] == "e" and ev.get("cat") == "txn")
        assert begins == ends >= result.txns

    def test_tracing_is_non_perturbing(self, design):
        spec = dataclasses.replace(TINY, design=design)
        plain = run_spec(spec)
        traced, _tracer, _sampler = traced_run(spec)
        assert traced.cycles == plain.cycles
        assert traced.txns == plain.txns
        assert traced.stats == plain.stats


class TestCrashTrace:
    def test_power_failure_closes_open_spans(self):
        name = sorted(catalog_by_name())[0]
        test = catalog_by_name()[name].to_dict()
        tracer = Tracer()
        point = LitmusPoint(test=test, design=Design.ATOM,
                            crash_cycle=3_000, seed=7)
        execute_litmus_point(point, instrument=tracer.install)
        events = tracer.to_chrome_trace()["traceEvents"]
        assert validate_chrome_trace(events) == []
        assert any(ev["name"] == "power-failure" and ev["ph"] == "i"
                   for ev in events)
        # Spans cut by the power failure are flagged, not dangling.
        cut = [ev for ev in events
               if ev["ph"] == "e" and ev.get("args", {}).get("cut")]
        opened = sum(1 for ev in events if ev["ph"] == "b")
        closed = sum(1 for ev in events if ev["ph"] == "e")
        assert opened == closed
        assert len(cut) <= closed


class TestTraceArtifact:
    def test_write_validates_and_is_loadable(self, tmp_path):
        _result, tracer, sampler = traced_run(TINY)
        sampler.emit_counters(tracer)
        out = tmp_path / "trace.json"
        count = tracer.write(out)
        payload = json.loads(out.read_text())
        assert len(payload["traceEvents"]) == count
        assert payload["displayTimeUnit"] == "ms"
        assert validate_chrome_trace(payload["traceEvents"]) == []

    def test_write_rejects_invalid_events(self, tmp_path):
        tracer = Tracer()
        tracer.events.append({"ph": "?", "name": "bogus",
                              "ts": 0, "pid": 1, "tid": 1})
        with pytest.raises(ValueError, match="bad phase"):
            tracer.write(tmp_path / "bad.json")


class TestValidator:
    def test_flags_bad_phase_and_missing_fields(self):
        problems = validate_chrome_trace([{"ph": "Z"}])
        assert any("bad phase" in p for p in problems)
        problems = validate_chrome_trace([{"ph": "i", "ts": 1}])
        assert any("missing" in p for p in problems)

    def test_flags_negative_and_non_integer_timestamps(self):
        base = {"ph": "i", "name": "x", "pid": 1, "tid": 1}
        assert validate_chrome_trace([{**base, "ts": -1}])
        assert validate_chrome_trace([{**base, "ts": 1.5}])
        assert validate_chrome_trace([{**base, "ts": 3}]) == []

    def test_flags_unmatched_async_spans(self):
        begin = {"ph": "b", "name": "t", "cat": "txn", "id": 1,
                 "pid": 1, "tid": 1, "ts": 5}
        end = {**begin, "ph": "e", "ts": 9}
        assert validate_chrome_trace([begin, end]) == []
        assert any("unmatched begin" in p
                   for p in validate_chrome_trace([begin]))
        assert any("end without begin" in p
                   for p in validate_chrome_trace([end]))
        backwards = [{**begin, "ts": 9}, {**end, "ts": 5}]
        assert any("ends before" in p
                   for p in validate_chrome_trace(backwards))

    def test_flags_non_numeric_counters(self):
        counter = {"ph": "C", "name": "c", "pid": 2, "tid": 0, "ts": 1,
                   "args": {"depth": "deep"}}
        assert any("counter" in p for p in validate_chrome_trace([counter]))


class TestSampler:
    def test_timeline_is_monotonic_and_complete(self):
        _result, _tracer, sampler = traced_run(TINY, interval=250)
        samples = sampler.samples
        assert samples, "a multi-thousand-cycle run must tick"
        cycles = [s["cycle"] for s in samples]
        assert cycles == sorted(cycles)
        for sample in samples:
            assert sample["sq_depth"] >= 0
            assert sample["write_queue_depth"] >= 0
            assert all(delta >= 0
                       for delta in sample["channel_busy"].values())
        total = samples[-1]["txns_committed"]
        assert sum(s["txns_delta"] for s in samples) == total

    def test_rejects_non_positive_interval(self):
        with pytest.raises(ValueError):
            StatSampler(object(), interval=0)


class TestFabricTelemetry:
    def test_counts_are_exact_past_the_event_cap(self):
        from repro.obs import fabric

        telemetry = FabricTelemetry()
        for _ in range(fabric.MAX_EVENTS + 5):
            telemetry.emit("dispatch")
        assert telemetry.counts["dispatch"] == fabric.MAX_EVENTS + 5
        assert len(telemetry.events) == fabric.MAX_EVENTS
        assert telemetry.events_dropped == 5
        assert telemetry.metrics()["events_dropped"] == 5

    def test_jsonl_stream_is_parseable(self, tmp_path):
        path = tmp_path / "fabric.jsonl"
        telemetry = FabricTelemetry(jsonl_path=str(path))
        telemetry.task_dispatched(0, 0, kind="run")
        telemetry.task_finished(0, status="ok", kind="run", attempts=1)
        telemetry.close()
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["event"] for r in records] == ["dispatch", "reply"]
        assert records[1]["wall_s"] >= 0
