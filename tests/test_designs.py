"""Design-policy behaviour: per-design store paths and invariants."""

from helpers import build_system
from repro.config import Design
from repro.cpu import ops


def one_txn_thread(lines=4, base=0x4000):
    yield ops.AtomicBegin()
    for i in range(lines):
        yield ops.Store(base + i * 64, b"d" * 64)
    yield ops.AtomicEnd(info="t")


def run_one(system, gen=None, max_cycles=10_000_000):
    system.start_threads([gen if gen is not None else one_txn_thread()])
    end = system.run(max_cycles=max_cycles)
    assert system.all_done()
    return end


class TestInvariant1:
    """A first-write store always carries an undo payload."""

    def test_log_entries_match_first_writes(self, undo_system):
        run_one(undo_system, one_txn_thread(lines=6))
        assert undo_system.stats.total("entries", prefix="logm") == 6

    def test_second_write_to_line_not_logged(self, undo_system):
        def thread():
            yield ops.AtomicBegin()
            yield ops.Store(0x4000, b"a" * 64)
            yield ops.Store(0x4000, b"b" * 64)  # same line
            yield ops.AtomicEnd()

        run_one(undo_system, thread())
        assert undo_system.stats.total("entries", prefix="logm") == 1


class TestInvariant2:
    """Data is never durable before its undo entry (checker enforced)."""

    def test_checker_runs_on_every_data_persist(self, undo_system):
        run_one(undo_system)
        assert undo_system.invariant_checker.checks > 0
        undo_system.invariant_checker.assert_clean()

    def test_durable_state_matches_after_commit(self, any_system):
        run_one(any_system)
        any_system.drain()
        if any_system.config.design is Design.REDO:
            any_system.crash()
            any_system.recover()
        assert any_system.image.durable_read(0x4000, 4 * 64) == b"d" * 256


class TestDesignOrdering:
    """BASE pays the most per store; ATOM's ack is cheap; OPT free on
    NVM-served misses; NON-ATOMIC pays nothing."""

    def test_store_latency_ordering(self):
        latency = {}
        for design in (Design.BASE, Design.ATOM, Design.NON_ATOMIC):
            system = build_system(design=design)
            run_one(system, one_txn_thread(lines=16))
            system.drain()
            total = system.stats.total("store_latency_cycles", prefix="core")
            count = system.stats.total("stores_retired", prefix="core")
            latency[design] = total / count
        assert latency[Design.BASE] > latency[Design.ATOM]
        assert latency[Design.ATOM] > latency[Design.NON_ATOMIC]

    def test_source_logging_only_in_opt(self):
        for design, expect in ((Design.ATOM, 0), (Design.ATOM_OPT, 1)):
            system = build_system(design=design)
            run_one(system, one_txn_thread(lines=8))
            source = system.stats.total("source_logged", prefix="logm")
            if expect:
                assert source > 0, "cold-cache store misses must source-log"
            else:
                assert source == 0

    def test_colocation_routes_log_with_data(self, system):
        run_one(system, one_txn_thread(lines=8, base=0x4000))
        # All 8 lines share the page at 0x4000 -> one controller logged.
        engaged = [
            mc.mc_id for mc in system.controllers
            if system.stats.domain(f"logm{mc.mc_id}").get("entries") > 0
        ]
        assert engaged == [system.layout.controller_of(0x4000)]


class TestRedoDesign:
    def test_word_granular_entries(self):
        system = build_system(design=Design.REDO)
        run_one(system, one_txn_thread(lines=4))
        # 4 lines x 8 words = 32 redo entries versus 4 undo entries.
        assert system.stats.domain("redo").get("entries") == 32

    def test_backend_applies_in_place(self):
        system = build_system(design=Design.REDO)
        run_one(system)
        system.drain()
        assert system.stats.domain("redo").get("applied") == 1
        assert system.image.durable_read(0x4000, 64) == b"d" * 64

    def test_no_flush_at_atomic_end(self):
        system = build_system(design=Design.REDO)
        run_one(system)
        assert system.stats.total("flushed_lines", prefix="core") == 0

    def test_commit_records_persisted(self):
        system = build_system(design=Design.REDO)
        run_one(system)
        assert system.stats.domain("redo").get("commits") == 1


class TestStructuralOverflow:
    def test_fewer_aus_than_cores_stalls_but_completes(self):
        system = build_system(num_cores=4)
        # Rebuild the allocator with a single slot: structural overflow.
        from repro.atom.aus import AusAllocator
        system.aus_allocator = AusAllocator(1)

        def thread(tid):
            yield ops.AtomicBegin()
            yield ops.Store(0x4000 + tid * 4096, b"s" * 64)
            yield ops.AtomicEnd()

        system.start_threads([thread(t) for t in range(4)])
        system.run(max_cycles=50_000_000)
        assert system.all_done()
        assert system.stats.total("txns_committed", prefix="core") == 4
        assert system.stats.total("aus_stall_cycles", prefix="core") > 0
