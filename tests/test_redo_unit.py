"""REDO comparator internals: WC buffers, commit, backend, parking."""

from helpers import build_system
from repro.config import Design
from repro.cpu import ops


def redo_system():
    return build_system(design=Design.REDO)


def run_txn(system, words=8, base=0x4000):
    def thread():
        yield ops.AtomicBegin()
        for i in range(words):
            yield ops.Store(base + i * 8, i.to_bytes(8, "little"))
        yield ops.AtomicEnd(info="t")

    system.start_threads([thread()])
    system.run(max_cycles=20_000_000)
    system.drain()


class TestWriteCombining:
    def test_four_entries_per_log_line(self):
        system = redo_system()
        run_txn(system, words=8)  # 8 entries -> 2 combined lines
        assert system.stats.domain("redo").get("entries") == 8
        assert system.stats.domain("redo").get("log_line_writes") == 2

    def test_partial_buffer_drains_at_commit(self):
        system = redo_system()
        run_txn(system, words=3)  # less than one full line
        assert system.stats.domain("redo").get("log_line_writes") == 1

    def test_entries_amplify_versus_undo(self):
        redo = redo_system()
        run_txn(redo, words=8)
        undo = build_system(design=Design.ATOM_OPT)
        run_txn(undo, words=8)
        redo_entries = redo.stats.domain("redo").get("entries")
        undo_entries = undo.stats.total("entries", prefix="logm")
        assert redo_entries == 8 and undo_entries == 1


class TestBackend:
    def test_backend_reads_then_writes(self):
        system = redo_system()
        run_txn(system)
        dom = system.stats.domain("redo")
        assert dom.get("log_line_reads") >= 1
        assert dom.get("in_place_writes") >= 1
        assert dom.get("applied") == 1

    def test_in_place_apply_makes_data_durable(self):
        system = redo_system()
        run_txn(system)
        for i in range(8):
            assert system.image.durable_read_u64(0x4000 + i * 8) == i

    def test_crash_before_apply_recovers_via_replay(self):
        system = redo_system()

        def thread():
            yield ops.AtomicBegin()
            yield ops.Store(0x4000, (7).to_bytes(8, "little"))
            yield ops.AtomicEnd()

        system.start_threads([thread()])
        system.run(max_cycles=20_000_000)
        # Crash immediately: the backend may not have applied yet.
        system.crash()
        report = system.recover()
        assert system.image.durable_read_u64(0x4000) == 7
        assert report.updates_rolled_back >= 0  # replay count

    def test_uncommitted_txn_vanishes(self):
        system = redo_system()

        def thread():
            yield ops.AtomicBegin()
            yield ops.Store(0x4000, (9).to_bytes(8, "little"))
            yield ops.AtomicEnd()
            yield ops.AtomicBegin()
            yield ops.Store(0x4040, (11).to_bytes(8, "little"))
            # never commits: crash hits mid-transaction

        system.start_threads([thread()])
        system.crash_at(3_000)
        system.run(max_cycles=20_000_000)
        system.recover()
        assert system.image.durable_read_u64(0x4040) == 0


class TestVictimParking:
    def test_parked_line_never_persists_early(self):
        """The invariant checker would raise if a parked line's dirty
        eviction reached the NVM before its transaction applied."""
        system = redo_system()
        run_txn(system, words=64, base=0x8000)
        system.invariant_checker.assert_clean()

    def test_park_hook_ignores_untracked_lines(self):
        system = redo_system()
        assert system.redo.park_dirty_eviction(0x7000) is False
