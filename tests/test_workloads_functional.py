"""Functional correctness of every workload under the DirectDriver.

Each workload runs its full transaction stream with zero timing, then
its durable verifier must pass — this separates structure bugs from
simulator bugs.
"""

import pytest

from helpers import build_system
from repro.runtime.driver import DirectDriver
from repro.workloads import MICROBENCHMARKS, make_workload

ALL = sorted(MICROBENCHMARKS)


def run_functionally(workload, system):
    workload.setup()
    driver = DirectDriver(system.image, durable=True)
    driver.on_commit = (
        lambda info: workload.golden_apply(info) if info is not None else None
    )
    for thread in workload.threads():
        driver.run(thread)
    workload.verify_durable()
    return driver


@pytest.mark.parametrize("name", ALL)
@pytest.mark.parametrize("entry_bytes", [512, 4096])
def test_workload_functional(name, entry_bytes):
    system = build_system()
    extra = {"capacity": 64} if name == "queue" and entry_bytes == 4096 else {}
    workload = make_workload(
        name, system, entry_bytes=entry_bytes, txns_per_thread=15,
        initial_items=12, threads=4, seed=99, **extra,
    )
    driver = run_functionally(workload, system)
    assert driver.ops_executed > 0
    assert workload.commits == 0  # DirectDriver bypasses system.on_commit


@pytest.mark.parametrize("name", ALL)
def test_workload_is_deterministic(name):
    def run(seed):
        system = build_system()
        workload = make_workload(name, system, entry_bytes=512,
                                 txns_per_thread=8, initial_items=8,
                                 threads=2, seed=seed)
        run_functionally(workload, system)
        return system.image.durable_read(0, 1 << 16)

    assert run(5) == run(5)
    assert run(5) != run(6) or name == "sps"  # sps may coincide rarely


def test_registry_rejects_unknown():
    from repro.common.errors import WorkloadError
    system = build_system()
    with pytest.raises(WorkloadError):
        make_workload("nosuch", system)


def test_size_presets():
    system = build_system()
    w = make_workload("hash", system, size="large", txns_per_thread=1,
                      threads=1, initial_items=1)
    assert w.params.entry_bytes == 4096


def test_thread_count_capped():
    from repro.common.errors import WorkloadError
    system = build_system()
    with pytest.raises(WorkloadError):
        make_workload("hash", system, threads=64)
