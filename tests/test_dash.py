"""Dashboard net: classification, rendering, self-containment.

The dashboard's contract is structural, so the tests are too: every
artifact kind the harness writes is recognized (current ``kind``
stamps and legacy un-stamped payloads alike), every section renders
without leaking placeholder text, equal inputs produce byte-identical
HTML, and the result never references anything beyond itself — no
scripts, links, images, or network URLs.
"""

from __future__ import annotations

import json

import pytest

from repro.harness.report import write_artifact
from repro.obs.dash import (
    build_dashboard, classify_artifact, external_references, load_artifact,
    main,
)

RECOVERY_FIGURE = {
    "atom-opt": {
        "series": [{"crash_cycle": 4000, "mean_cycles": 1560.0,
                    "ci": 0.0, "points": 1},
                   {"crash_cycle": 8000, "mean_cycles": 18432.0,
                    "ci": 120.0, "points": 2}],
        "mean_cycles": 9996.0, "ci": 8436.0, "points": 3,
    },
}

LITMUS = {
    "kind": "litmus", "points_total": 8,
    "recovery_figure": RECOVERY_FIGURE,
    "summary": {"cells": 2, "failures": 0},
    "cells": [
        {"test": "atomicity-pair", "design": "atom-opt", "points": 4,
         "status": "ok", "reached": 2, "forbidden_seen": 0,
         "window_hits": {"quiescent": 3, "flush-loop": 1}},
        {"test": "atomicity-pair", "design": "redo", "points": 4,
         "status": "FAIL", "reached": 2, "forbidden_seen": 1,
         "window_hits": {"quiescent": 4}},
    ],
    "campaign": {"tasks": 8, "computed": 8, "cache_hits": 0,
                 "retries": 0, "quarantined": 0},
}

FAULTS = {
    "kind": "faults", "points_total": 3,
    "recovery_figure": RECOVERY_FIGURE,
    "summary": {"cells": 1, "failures": 0, "detected": 1, "vacuous": 0},
    "cells": [
        {"design": "atom-opt", "workload": "hash",
         "fault": "log-corruption", "status": "detected", "points": 3,
         "applied_points": 3, "detections": 2,
         "mean_recovery_cycles": 9560.0,
         "recovery_cost": {"lines_scanned": 40}, "failures": []},
    ],
}

CRASH = {
    "kind": "crash-sweep", "points_total": 4,
    "recovery_figure": RECOVERY_FIGURE,
    "summary": {"cells": 1, "failures": 0},
    "cells": [{"design": "atom-opt", "workload": "hash", "points": 4,
               "points_ok": 4, "commits": 22, "rolled_back": 11}],
    "failures": [],
}

ANALYSIS = {
    "schema": 1, "kind": "txn-analysis", "workload": "hash", "seed": 7,
    "designs": {
        "base": {
            "txns": 32, "cut_txns": 0,
            "stages": {s: {"mean": m, "ci": 1.0, "total": m * 32}
                       for s, m in (("execute", 80.0),
                                    ("sq_residency", 700.0),
                                    ("log_persist", 1800.0),
                                    ("commit_flush", 380.0),
                                    ("redo_commit", 0.0))},
            "duration": {"mean": 2960.0, "ci": 20.0, "total": 94720},
            "apply_lag": None,
            "adr": {"drains": 0, "txns_with_drain": 0, "share": 0.0},
        },
        "redo": {
            "txns": 32, "cut_txns": 0,
            "stages": {s: {"mean": m, "ci": 1.0, "total": m * 32}
                       for s, m in (("execute", 80.0),
                                    ("sq_residency", 100.0),
                                    ("log_persist", 0.0),
                                    ("commit_flush", 0.0),
                                    ("redo_commit", 700.0))},
            "duration": {"mean": 880.0, "ci": 9.0, "total": 28160},
            "apply_lag": {"mean": 1379.0, "ci": 162.0, "points": 32},
            "adr": {"drains": 2, "txns_with_drain": 1, "share": 0.03125},
        },
    },
    "differential": {
        "reference": "base",
        "deltas": {"redo": {"duration": {"delta": -2080.0, "ci": 22.0}}},
    },
}

PERF = {
    "benchmark": "kernel", "scale": 0.5, "repeats": 2,
    "points": [{"design": "atom-opt", "workload": "hash",
                "events": 1000, "wall_s": 0.01,
                "events_per_sec": 100000.0, "repeat_eps": [99000.0,
                                                           100000.0]}],
    "aggregate": {"geomean_events_per_sec": 100000.0,
                  "geomean_mean": 99500.0, "geomean_ci": 980.0,
                  "total_events": 1000, "total_wall_s": 0.01},
    "profile": {"engine": {"events": 1000, "wall_s": 0.008,
                           "wall_pct": 80.0}},
}

HISTORY = [
    {"schema": 1, "t": 1.0, "geomean": 100000.0, "geomean_ci": 500.0,
     "scale": 0.5, "repeats": 2, "points": {}},
    {"schema": 1, "t": 2.0, "geomean": 101000.0, "geomean_ci": 400.0,
     "scale": 0.5, "repeats": 2, "points": {}},
]

TRACE = {
    "traceEvents": [
        {"ph": "b", "name": "txn", "cat": "txn", "id": 1, "pid": 1,
         "tid": 0, "ts": 100, "args": {"txn": 1, "core": 0}},
        {"ph": "e", "name": "txn", "cat": "txn", "id": 1, "pid": 1,
         "tid": 0, "ts": 200, "args": {"txn": 1}},
    ],
    "displayTimeUnit": "ms",
}

ALL_ITEMS = [
    ("litmus.json", "litmus", LITMUS),
    ("faults.json", "faults", FAULTS),
    ("crash.json", "crash-sweep", CRASH),
    ("analysis.json", "analysis", ANALYSIS),
    ("bench.json", "perf", PERF),
    ("history.jsonl", "history", HISTORY),
    ("trace.json", "trace", TRACE),
]


class TestClassify:
    @pytest.mark.parametrize("payload,kind", [
        (LITMUS, "litmus"), (FAULTS, "faults"), (CRASH, "crash-sweep"),
        (ANALYSIS, "analysis"), (PERF, "perf"), (HISTORY, "history"),
        (TRACE, "trace"),
    ], ids=lambda v: v if isinstance(v, str) else "")
    def test_all_artifact_kinds_recognized(self, payload, kind):
        assert classify_artifact(payload) == kind

    def test_legacy_unstamped_payloads_sniffed_from_cells(self):
        for payload, kind in ((LITMUS, "litmus"), (FAULTS, "faults"),
                              (CRASH, "crash-sweep")):
            legacy = {k: v for k, v in payload.items() if k != "kind"}
            assert classify_artifact(legacy) == kind

    def test_garbage_is_unrecognized(self):
        assert classify_artifact({"mystery": 1}) is None
        assert classify_artifact([1, 2, 3]) is None
        assert classify_artifact("nope") is None
        assert classify_artifact({"cells": []}) is None


class TestLoadArtifact:
    def test_json_and_jsonl_paths(self, tmp_path):
        j = tmp_path / "bench.json"
        write_artifact(j, PERF)
        name, kind, payload = load_artifact(j)
        assert (name, kind) == ("bench.json", "perf")
        assert payload["aggregate"] == PERF["aggregate"]

        ledger = tmp_path / "history.jsonl"
        with open(ledger, "w", encoding="utf-8") as fh:
            for entry in HISTORY:
                fh.write(json.dumps(entry) + "\n")
            fh.write("{torn\n")
        name, kind, payload = load_artifact(ledger)
        assert (name, kind) == ("history.jsonl", "history")
        assert len(payload) == 2


class TestBuildDashboard:
    def test_every_section_renders(self):
        doc = build_dashboard(ALL_ITEMS)
        for heading in ("Litmus", "Faults", "Crash sweep",
                        "Transaction latency", "Perf", "Perf history"):
            assert heading in doc
        # Data from each artifact surfaces in its section.
        assert "atomicity-pair" in doc
        assert "log-corruption" in doc
        assert "100,000" in doc
        # Recovery figures render as charts, statuses as labeled chips.
        assert doc.count("<svg") >= 4
        assert "detected" in doc and "FAIL" in doc

    def test_deterministic_for_equal_inputs(self):
        assert build_dashboard(ALL_ITEMS) == build_dashboard(ALL_ITEMS)

    def test_no_placeholder_leakage(self):
        doc = build_dashboard(ALL_ITEMS)
        for marker in ("None", "NaN", "nan", "@SERIES_LIGHT@",
                       "@SERIES_DARK@"):
            assert marker not in doc

    def test_unknown_kind_gets_a_visible_note(self):
        doc = build_dashboard([("weird.json", "mystery", {})])
        assert "skipped unrecognized artifact" in doc
        assert "weird.json" in doc

    def test_empty_input_still_valid_document(self):
        doc = build_dashboard([])
        assert doc.startswith("<!doctype html>")
        assert "no artifacts" in doc
        assert external_references(doc) == []

    def test_traces_fold_through_the_analyzer(self):
        doc = build_dashboard([("trace.json", "trace", TRACE)])
        assert "Transaction latency" in doc

    def test_markup_is_escaped(self):
        hostile = dict(LITMUS)
        hostile["cells"] = [dict(LITMUS["cells"][0],
                                 test="<script>alert(1)</script>")]
        doc = build_dashboard([("litmus.json", "litmus", hostile)])
        assert "<script>" not in doc
        assert "&lt;script&gt;" in doc


class TestSelfContainment:
    def test_full_dashboard_has_no_external_references(self):
        assert external_references(build_dashboard(ALL_ITEMS)) == []

    def test_detector_catches_each_marker(self):
        for marker in ("http://x", "https://x", "<script>", "<link ",
                       "<img ", "src=\"x\"", "url(x)", "@import",
                       "href=\"x\""):
            assert external_references(f"<html>{marker}</html>")

    def test_dark_mode_palette_is_selected_not_flipped(self):
        doc = build_dashboard(ALL_ITEMS)
        assert "prefers-color-scheme: dark" in doc
        # Light and dark series colors differ (validated separately).
        assert "#2a78d6" in doc and "#3987e5" in doc


class TestCli:
    def write_artifacts(self, tmp_path):
        paths = []
        for name, _kind, payload in ALL_ITEMS:
            path = tmp_path / name
            if name.endswith(".jsonl"):
                with open(path, "w", encoding="utf-8") as fh:
                    for entry in payload:
                        fh.write(json.dumps(entry) + "\n")
            else:
                write_artifact(path, payload)
            paths.append(str(path))
        return paths

    def test_end_to_end(self, tmp_path, capsys):
        out = tmp_path / "dash.html"
        rc = main(self.write_artifacts(tmp_path) + ["--out", str(out)])
        assert rc == 0
        assert f"7 artifact(s)" in capsys.readouterr().out
        document = out.read_text()
        assert external_references(document) == []
        assert "Litmus" in document and "Perf history" in document

    def test_missing_artifact_is_exit_2(self, tmp_path, capsys):
        rc = main([str(tmp_path / "absent.json"),
                   "--out", str(tmp_path / "x.html")])
        assert rc == 2
        assert "cannot read artifact" in capsys.readouterr().out

    def test_unrecognized_artifact_warns_and_continues(self, tmp_path,
                                                       capsys):
        unknown = tmp_path / "unknown.json"
        write_artifact(unknown, {"mystery": 1})
        known = tmp_path / "litmus.json"
        write_artifact(known, LITMUS)
        out = tmp_path / "dash.html"
        rc = main([str(unknown), str(known), "--out", str(out)])
        assert rc == 0
        captured = capsys.readouterr().out
        assert "skipping unrecognized" in captured
        assert "1 artifact(s)" in captured
        assert out.exists()
