"""Double-crash recovery idempotence (paper section IV-D, step 4).

Recovery's final step clears the ADR block so that a *second* recovery
is a no-op.  These tests cover the claim directly, for both crash
timings:

* **after** recovery — run recovery twice; the second pass must roll
  back nothing and leave the durable image byte-identical;
* **during** recovery — model a crash after the undo writes landed but
  before the ADR clear persisted (``recover(clear_adr=False)``), then
  run full recovery again: the re-run re-undoes the same records, which
  must converge to the same image (undo writes are idempotent).

The REDO comparator's replay is covered too: replaying the committed
log a second time must change nothing.
"""

import pytest

from helpers import crash_run
from repro.atom import recovery
from repro.config import Design

UNDO = [Design.BASE, Design.ATOM, Design.ATOM_OPT]

#: A crash cycle that reliably interrupts transactions mid-flight.
MID_RUN = 12_000


def data_bytes(system) -> bytes:
    """Durable contents of the data space (log regions excluded: the
    ADR clear itself rewrites log-region bytes by design).  Bytes, not
    a digest, so a failed comparison shows what diverged."""
    return system.image.durable_extract([(0, system.layout.data_bytes)])


class TestSecondRecoveryAfterRecovery:
    @pytest.mark.parametrize("design", UNDO)
    def test_second_recovery_is_noop(self, design):
        system, workload, report = crash_run("hash", design, MID_RUN)
        image_after_first = system.image.durable_digest()
        second = system.recover()
        # Step 4 cleared the ADR block: nothing to undo any more.
        assert second.updates_rolled_back == 0
        assert second.records_undone == 0
        assert system.image.durable_digest() == image_after_first
        workload.verify_durable()

    def test_adr_block_cleared_after_recovery(self):
        system, _, _ = crash_run("hash", Design.ATOM_OPT, MID_RUN)
        for controller in range(system.layout.num_controllers):
            base = system.layout.adr_base(controller)
            blob = system.image.durable_read(
                base, system.layout.adr_block_bytes
            )
            assert blob == bytes(system.layout.adr_block_bytes)

    def test_redo_second_replay_changes_nothing(self):
        system, workload, _ = crash_run("hash", Design.REDO, MID_RUN)
        digest = system.image.durable_digest()
        assert system.redo.recover() == 0  # committed prefix fully applied
        assert system.image.durable_digest() == digest
        workload.verify_durable()


class TestCrashDuringRecovery:
    @pytest.mark.parametrize("design", UNDO)
    def test_rerun_after_interrupted_recovery_converges(self, design):
        """Crash between recovery's undo writes and the ADR clear."""
        from helpers import build_system
        from repro.workloads import make_workload

        system = build_system(design=design, num_cores=4)
        workload = make_workload("hash", system, entry_bytes=512,
                                 txns_per_thread=8, initial_items=12,
                                 threads=4, seed=7)
        workload.setup()
        system.start_threads(workload.threads())
        system.crash_at(MID_RUN)
        system.run(max_cycles=30_000_000)
        assert system.crashed

        # First recovery pass interrupted before step 4: undo writes
        # land, the ADR block survives.
        first = recovery.recover(system.image, system.layout,
                                 system.config.log, clear_adr=False)
        data_after_first = data_bytes(system)
        # Rebooting re-runs recovery from the intact ADR block: it
        # re-undoes the same records, converging to the same data image,
        # and this time clears the ADR block.
        second = recovery.recover(system.image, system.layout,
                                  system.config.log)
        assert second.records_undone == first.records_undone
        assert data_bytes(system) == data_after_first
        # Third pass: a genuine no-op.
        third = recovery.recover(system.image, system.layout,
                                 system.config.log)
        assert third.records_undone == 0
        system.image.crash()  # reboot: volatile resyncs to durable
        workload.verify_durable()
