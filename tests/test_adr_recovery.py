"""ADR serialization and the recovery routine's record-acceptance rules."""

from hypothesis import given
from hypothesis import strategies as st

from helpers import build_system
from repro.atom import adr, recovery
from repro.atom.aus import AusState
from repro.atom.record import FLAG_VALID, RecordHeader
from repro.common.units import CACHE_LINE_BYTES
from repro.mem.layout import RecordAddress


class TestAdrCodec:
    def test_roundtrip(self):
        states = [AusState(i, 64) for i in range(4)]
        states[1].bucket_vec.set(3)
        states[1].current_bucket = 3
        states[1].current_record = 2
        states[1].update_start_seq = 99
        blob = adr.serialize(states, 64)
        images = adr.deserialize(blob)
        assert len(images) == 4
        assert images[1].bucket_vec.test(3)
        assert images[1].current_bucket == 3
        assert images[1].current_record == 2
        assert images[1].update_start_seq == 99
        assert images[0].current_bucket is None
        assert images[0].update_start_seq is None

    def test_empty_blob_means_no_flush(self):
        assert adr.deserialize(b"") == []

    def test_wrong_magic_rejected(self):
        assert adr.deserialize(b"\x00" * 64) == []

    @given(st.lists(
        st.tuples(st.integers(0, 2**16 - 1),
                  st.integers(0, 63),
                  st.integers(0, 2**16 - 1)),
        min_size=1, max_size=8,
    ))
    def test_roundtrip_property(self, regs):
        states = []
        for slot, (vec_seed, bucket, record) in enumerate(regs):
            state = AusState(slot, 64)
            state.bucket_vec._bits = vec_seed
            state.current_bucket = bucket
            state.current_record = record
            state.update_start_seq = slot * 3
            states.append(state)
        images = adr.deserialize(adr.serialize(states, 64))
        for state, image in zip(states, images):
            assert image.bucket_vec == state.bucket_vec
            assert image.current_bucket == state.current_bucket
            assert image.current_record == state.current_record
            assert image.update_start_seq == state.update_start_seq


def write_record(system, rec: RecordAddress, owner: int, seq: int,
                 addresses: list[int], payloads: list[bytes]) -> None:
    """Place a fully persisted record directly into the durable image."""
    layout = system.layout
    for slot, payload in enumerate(payloads):
        system.image.persist(layout.record_entry_addr(rec, slot), payload)
    header = RecordHeader(addresses=addresses, count=len(addresses),
                          flags=FLAG_VALID, owner=owner, seq=seq)
    system.image.persist(layout.record_header_addr(rec), header.encode())


def flush_adr(system, mc_id=0) -> None:
    adr.flush_on_power_failure(
        system.controllers[mc_id].logm, system.image, system.layout
    )


class TestRecoveryAcceptance:
    def test_accepts_a_simple_incomplete_update(self, system):
        logm = system.controllers[0].logm
        logm.begin(0, 0)
        state = logm.aus[0]
        state.bucket_vec.set(0)
        state.current_bucket = 0
        state.current_record = 1
        state.update_start_seq = 10
        old = b"\x11" * CACHE_LINE_BYTES
        system.image.persist(0x1000, b"\x99" * CACHE_LINE_BYTES)
        write_record(system, RecordAddress(0, 0, 0), owner=0, seq=10,
                     addresses=[0x1000], payloads=[old])
        flush_adr(system)
        report = recovery.recover(system.image, system.layout,
                                  system.config.log)
        assert report.updates_rolled_back == 1
        assert report.entries_undone == 1
        assert system.image.durable_read(0x1000, 64) == old

    def test_rejects_stale_header_below_start_seq(self, system):
        """The bug class found during bring-up: a committed update's
        header survives bucket reallocation; start-seq must reject it."""
        logm = system.controllers[0].logm
        logm.begin(0, 0)
        state = logm.aus[0]
        state.bucket_vec.set(0)
        state.current_bucket = 0
        state.current_record = 1
        state.update_start_seq = 50  # current update began at seq 50
        committed_value = b"\xCC" * CACHE_LINE_BYTES
        system.image.persist(0x1000, committed_value)
        # Stale record from the *committed* epoch (seq 7 < 50).
        write_record(system, RecordAddress(0, 0, 0), owner=0, seq=7,
                     addresses=[0x1000],
                     payloads=[b"\x00" * CACHE_LINE_BYTES])
        flush_adr(system)
        recovery.recover(system.image, system.layout, system.config.log)
        assert system.image.durable_read(0x1000, 64) == committed_value

    def test_rejects_wrong_owner(self, system):
        logm = system.controllers[0].logm
        logm.begin(0, 0)
        state = logm.aus[0]
        state.bucket_vec.set(0)
        state.current_bucket = 0
        state.current_record = 1
        state.update_start_seq = 0
        value = b"\xDD" * CACHE_LINE_BYTES
        system.image.persist(0x1000, value)
        write_record(system, RecordAddress(0, 0, 0), owner=3, seq=5,
                     addresses=[0x1000],
                     payloads=[b"\x00" * CACHE_LINE_BYTES])
        flush_adr(system)
        recovery.recover(system.image, system.layout, system.config.log)
        assert system.image.durable_read(0x1000, 64) == value

    def test_newest_first_converges_to_oldest_value(self, system):
        """A line logged twice rolls back to its pre-update value."""
        logm = system.controllers[0].logm
        logm.begin(0, 0)
        state = logm.aus[0]
        state.bucket_vec.set(0)
        state.current_bucket = 0
        state.current_record = 2
        state.update_start_seq = 10
        pre_txn = b"\x01" * CACHE_LINE_BYTES
        mid_txn = b"\x02" * CACHE_LINE_BYTES
        write_record(system, RecordAddress(0, 0, 0), owner=0, seq=10,
                     addresses=[0x1000], payloads=[pre_txn])
        write_record(system, RecordAddress(0, 0, 1), owner=0, seq=11,
                     addresses=[0x1000], payloads=[mid_txn])
        system.image.persist(0x1000, b"\x03" * CACHE_LINE_BYTES)
        flush_adr(system)
        recovery.recover(system.image, system.layout, system.config.log)
        assert system.image.durable_read(0x1000, 64) == pre_txn

    def test_prefix_stops_at_dropped_header(self, system):
        """A header whose persist was dropped truncates the prefix, but
        earlier records still roll back."""
        logm = system.controllers[0].logm
        logm.begin(0, 0)
        state = logm.aus[0]
        state.bucket_vec.set(0)
        state.current_bucket = 0
        state.current_record = 2  # register says two records closed...
        state.update_start_seq = 10
        old = b"\x0A" * CACHE_LINE_BYTES
        write_record(system, RecordAddress(0, 0, 0), owner=0, seq=10,
                     addresses=[0x1000], payloads=[old])
        # ...but record 1's header never reached the NVM (zeros).
        flush_adr(system)
        report = recovery.recover(system.image, system.layout,
                                  system.config.log)
        assert report.records_undone == 1
        assert system.image.durable_read(0x1000, 64) == old

    def test_recovery_is_idempotent(self, system):
        logm = system.controllers[0].logm
        logm.begin(0, 0)
        state = logm.aus[0]
        state.bucket_vec.set(0)
        state.current_bucket = 0
        state.current_record = 1
        state.update_start_seq = 0
        write_record(system, RecordAddress(0, 0, 0), owner=0, seq=0,
                     addresses=[0x1000],
                     payloads=[b"\x0B" * CACHE_LINE_BYTES])
        flush_adr(system)
        first = recovery.recover(system.image, system.layout,
                                 system.config.log)
        second = recovery.recover(system.image, system.layout,
                                  system.config.log)
        assert first.updates_rolled_back == 1
        assert second.updates_rolled_back == 0

    def test_no_adr_flush_means_nothing_to_do(self, system):
        report = recovery.recover(system.image, system.layout,
                                  system.config.log)
        assert report.updates_rolled_back == 0
        assert report.controllers_with_state == 0
