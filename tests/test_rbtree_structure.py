"""Property-based red-black tree structure tests (functional driver).

The rbtree workload's own verifier checks the red-black invariants; here
hypothesis drives random insert/delete scripts and the verifier must
hold after every batch — catching rebalancing bugs without a simulator
in the loop.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import build_system
from repro.runtime.driver import DirectDriver
from repro.workloads.rbtree import RBTreeWorkload
from repro.workloads.base import WorkloadParams, payload_tag


def make_workload(initial=0, seed=1):
    system = build_system()
    params = WorkloadParams(entry_bytes=512, txns_per_thread=1,
                            threads=1, initial_items=initial, seed=seed)
    workload = RBTreeWorkload(system, params)
    driver = DirectDriver(system.image, durable=True)
    workload.setup()
    return workload, driver


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(st.booleans(), st.integers(min_value=1, max_value=60)),
        min_size=1, max_size=120,
    )
)
def test_random_scripts_keep_rb_invariants(script):
    workload, driver = make_workload()
    live: dict[int, int] = {}
    for do_insert, key_seed in script:
        key = key_seed * 64 + 1  # match the workload's key spacing
        if do_insert and key not in live:
            driver.run(workload._insert(0, key, 0))
            live[key] = payload_tag(key, 0)
            workload.golden[0][key] = live[key]
        elif not do_insert and live:
            victim = sorted(live)[key_seed % len(live)]
            node = driver.run(workload._search(0, victim))
            assert node
            driver.run(workload._delete(0, node))
            del live[victim]
            del workload.golden[0][victim]
    workload.verify_durable()


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=2**16))
def test_setup_population_is_valid(seed):
    workload, _ = make_workload(initial=40, seed=seed)
    workload.verify_durable()


def test_search_miss_returns_zero():
    workload, driver = make_workload(initial=5)
    assert driver.run(workload._search(0, 999_999_937)) == 0


def test_delete_root_repeatedly():
    """Deleting the root every time exercises every fixup arm."""
    workload, driver = make_workload()
    keys = [k * 64 + 1 for k in range(1, 33)]
    for key in keys:
        driver.run(workload._insert(0, key, 0))
        workload.golden[0][key] = payload_tag(key, 0)
    reader = workload.reader()
    for _ in range(len(keys)):
        root = reader.load_u64(workload.roots[0])
        key = reader.load_u64(root + 0)
        driver.run(workload._delete(0, root))
        del workload.golden[0][key]
        workload.verify_durable()
