"""Two-image memory model: volatile versus durable semantics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import MemoryError_
from repro.mem.image import MemoryImage


class TestBasics:
    def test_starts_zeroed(self):
        image = MemoryImage(4096)
        assert image.read(0, 16) == bytes(16)
        assert image.durable_read(0, 16) == bytes(16)

    def test_write_is_volatile_only(self):
        image = MemoryImage(4096)
        image.write(100, b"hello")
        assert image.read(100, 5) == b"hello"
        assert image.durable_read(100, 5) == bytes(5)

    def test_persist_updates_durable(self):
        image = MemoryImage(4096)
        image.persist(64, b"x" * 64)
        assert image.durable_read(64, 64) == b"x" * 64

    def test_u64_roundtrip(self):
        image = MemoryImage(4096)
        image.write_u64(8, 0xDEADBEEF)
        assert image.read_u64(8) == 0xDEADBEEF

    def test_durable_read_u64(self):
        image = MemoryImage(4096)
        image.persist(0, (123).to_bytes(8, "little"))
        assert image.durable_read_u64(0) == 123

    def test_bounds_checked(self):
        image = MemoryImage(128)
        with pytest.raises(MemoryError_):
            image.read(120, 16)
        with pytest.raises(MemoryError_):
            image.write(-1, b"x")
        with pytest.raises(MemoryError_):
            image.persist(128, b"x")

    def test_size_must_be_line_multiple(self):
        with pytest.raises(MemoryError_):
            MemoryImage(100)


class TestLineViews:
    def test_volatile_line_snapshots_latest(self):
        image = MemoryImage(4096)
        image.write(70, b"\xAA")
        line = image.volatile_line(70)
        assert len(line) == 64
        assert line[6] == 0xAA

    def test_durable_line_is_nvm_contents(self):
        image = MemoryImage(4096)
        image.write(70, b"\xAA")
        assert image.durable_line(70) == bytes(64)


class TestCrashSemantics:
    def test_crash_discards_unpersisted_writes(self):
        image = MemoryImage(4096)
        image.write(0, b"volatile!")
        image.persist(64, b"durable!")
        image.crash()
        assert image.read(0, 9) == bytes(9)
        assert image.read(64, 8) == b"durable!"

    def test_sync_all_flushes_everything(self):
        image = MemoryImage(4096)
        image.write(0, b"setup")
        image.sync_all()
        assert image.durable_read(0, 5) == b"setup"

    def test_persist_equals_volatile(self):
        image = MemoryImage(4096)
        image.write(0, b"ab")
        assert not image.persist_equals_volatile(0, 2)
        image.persist(0, b"ab")
        assert image.persist_equals_volatile(0, 2)

    @given(st.lists(
        st.tuples(st.integers(min_value=0, max_value=4000),
                  st.binary(min_size=1, max_size=64),
                  st.booleans()),
        max_size=30,
    ))
    def test_crash_preserves_exactly_the_persisted_state(self, ops):
        """After a crash, every byte equals its last *persisted* value."""
        image = MemoryImage(8192)
        shadow_durable = bytearray(8192)
        for addr, data, persisted in ops:
            if addr + len(data) > 8192:
                continue
            image.write(addr, data)
            if persisted:
                image.persist(addr, data)
                shadow_durable[addr:addr + len(data)] = data
        image.crash()
        assert image.read(0, 8192) == bytes(shadow_durable)
        assert image.durable_read(0, 8192) == bytes(shadow_durable)


class TestDurableDigestExtract:
    """Recovered-state snapshot helpers (litmus explorer, recovery tests)."""

    def test_extract_concatenates_ranges(self):
        image = MemoryImage(4096)
        image.persist(0, b"aa")
        image.persist(128, b"bb")
        assert image.durable_extract([(0, 2), (128, 2)]) == b"aabb"

    def test_digest_tracks_durable_not_volatile(self):
        image = MemoryImage(4096)
        before = image.durable_digest([(0, 64)])
        image.write(0, b"x")  # volatile only
        assert image.durable_digest([(0, 64)]) == before
        image.persist(0, b"x")
        assert image.durable_digest([(0, 64)]) != before

    def test_whole_image_digest_detects_any_change(self):
        image = MemoryImage(4096)
        before = image.durable_digest()
        image.persist(4032, b"z")
        assert image.durable_digest() != before

    def test_digest_hashes_range_boundaries(self):
        # Same bytes, different layout: digests must differ.
        image = MemoryImage(4096)
        assert (image.durable_digest([(0, 128)])
                != image.durable_digest([(0, 64), (64, 64)]))

    def test_out_of_bounds_range_rejected(self):
        image = MemoryImage(4096)
        with pytest.raises(MemoryError_):
            image.durable_digest([(4090, 64)])
        with pytest.raises(MemoryError_):
            image.durable_extract([(-1, 8)])
