"""Integration: every workload under the full timing simulator."""

import pytest

from helpers import build_system
from repro.config import Design
from repro.workloads import make_workload

ALL = ["hash", "queue", "rbtree", "btree", "sdg", "sps"]


def simulate(name, design=Design.ATOM_OPT, **kw):
    system = build_system(design=design)
    workload = make_workload(
        name, system,
        entry_bytes=kw.pop("entry_bytes", 512),
        txns_per_thread=kw.pop("txns_per_thread", 6),
        initial_items=kw.pop("initial_items", 10),
        threads=kw.pop("threads", 4),
        seed=kw.pop("seed", 3),
    )
    workload.setup()
    system.start_threads(workload.threads())
    end = system.run(max_cycles=50_000_000)
    assert system.all_done(), f"{name} did not finish"
    return system, workload, end


@pytest.mark.parametrize("name", ALL)
def test_workload_completes_and_verifies(name):
    system, workload, _ = simulate(name)
    assert workload.commits == 4 * 6
    system.crash()
    system.recover()
    workload.verify_durable()

@pytest.mark.parametrize("name", ["hash", "rbtree"])
def test_invariant_checks_exercised(name):
    system, workload, _ = simulate(name)
    assert system.invariant_checker.checks > 0
    system.invariant_checker.assert_clean()


@pytest.mark.parametrize("design", list(Design))
def test_rbtree_all_designs(design):
    system, workload, _ = simulate("rbtree", design=design)
    assert workload.commits == 24


def test_timing_is_deterministic():
    ends = {simulate("hash", seed=11)[2] for _ in range(2)}
    assert len(ends) == 1


def test_throughput_ordering_holds_on_small_system():
    """The headline ordering reproduces even on the 4-core test machine."""
    cycles = {}
    for design in (Design.BASE, Design.ATOM_OPT, Design.NON_ATOMIC):
        _, _, end = simulate("hash", design=design, txns_per_thread=8)
        cycles[design] = end
    assert cycles[Design.BASE] > cycles[Design.ATOM_OPT]
    assert cycles[Design.ATOM_OPT] > cycles[Design.NON_ATOMIC]


def test_tpcc_completes_and_verifies():
    system = build_system(design=Design.ATOM_OPT,
                          data_bytes=8 * 1024 * 1024)
    workload = make_workload("tpcc", system, txns_per_thread=3, threads=4)
    workload.setup()
    system.start_threads(workload.threads())
    system.run(max_cycles=100_000_000)
    assert system.all_done()
    system.crash()
    system.recover()
    workload.verify_durable()


def test_tpcc_mid_crash():
    system = build_system(design=Design.ATOM_OPT,
                          data_bytes=8 * 1024 * 1024)
    workload = make_workload("tpcc", system, txns_per_thread=3, threads=4)
    workload.setup()
    system.start_threads(workload.threads())
    system.crash_at(60_000)
    system.run(max_cycles=100_000_000)
    system.recover()
    workload.verify_durable()
