"""Private L1 cache: tags, LRU, log bit lifecycle, directory hooks."""

from repro.coherence.l1 import L1Cache
from repro.coherence.states import MESI
from repro.common.stats import Stats
from repro.config import CacheConfig


class FakeL2:
    """Records directory calls without any timing."""

    def __init__(self):
        self.calls = []

    def get_shared(self, core, line, on_fill):
        self.calls.append(("GetS", core, line))

    def get_exclusive(self, core, line, atomic, on_fill):
        self.calls.append(("GetX", core, line, atomic))

    def writeback_dirty(self, core, line):
        self.calls.append(("PutM", core, line))

    def evict_clean(self, core, line):
        self.calls.append(("PutS", core, line))


def make_l1(ways=2, sets=4):
    cfg = CacheConfig(size_bytes=ways * sets * 64, ways=ways, latency=3)
    l1 = L1Cache(0, cfg, mshrs=4, stats=Stats().domain("l1"))
    l1.l2 = FakeL2()
    return l1


def fill(l1, line, state=MESI.EXCLUSIVE, source_logged=False):
    from repro.coherence.l1 import FillInfo
    l1.mshrs.allocate(line, lambda info: None)
    l1._fill(line, FillInfo(state, source_logged))


class TestLookup:
    def test_miss_then_hit(self):
        l1 = make_l1()
        assert not l1.load_hit(0x40)
        fill(l1, 0x40, MESI.SHARED)
        assert l1.load_hit(0x40)

    def test_store_probe_states(self):
        l1 = make_l1()
        assert l1.store_probe(0x40) is MESI.INVALID
        fill(l1, 0x40, MESI.SHARED)
        assert l1.store_probe(0x40) is MESI.SHARED

    def test_ensure_writable_hit_in_e_upgrades_silently(self):
        l1 = make_l1()
        fill(l1, 0x40, MESI.EXCLUSIVE)
        seen = []
        l1.ensure_writable(0x40, False, lambda info: seen.append(info))
        assert seen and seen[0].state is MESI.MODIFIED
        assert l1.probe(0x40).state is MESI.MODIFIED
        assert l1.l2.calls == []

    def test_ensure_writable_miss_issues_getx(self):
        l1 = make_l1()
        l1.ensure_writable(0x40, True, lambda info: None)
        assert ("GetX", 0, 0x40, True) in l1.l2.calls

    def test_shared_store_issues_upgrade(self):
        l1 = make_l1()
        fill(l1, 0x40, MESI.SHARED)
        l1.ensure_writable(0x40, False, lambda info: None)
        assert ("GetX", 0, 0x40, False) in l1.l2.calls


class TestEviction:
    def test_lru_victim_selected(self):
        l1 = make_l1(ways=2, sets=1)
        fill(l1, 0 * 64, MESI.SHARED)
        fill(l1, 1 * 64, MESI.SHARED)
        l1.load_hit(0)              # touch line 0: line 64 becomes LRU
        fill(l1, 2 * 64, MESI.SHARED)
        assert l1.probe(0) is not None
        assert l1.probe(64) is None

    def test_dirty_eviction_writes_back(self):
        l1 = make_l1(ways=1, sets=1)
        fill(l1, 0, MESI.MODIFIED)
        fill(l1, 64, MESI.SHARED)
        assert ("PutM", 0, 0) in l1.l2.calls

    def test_clean_eviction_is_silent_put(self):
        l1 = make_l1(ways=1, sets=1)
        fill(l1, 0, MESI.SHARED)
        fill(l1, 64, MESI.SHARED)
        assert ("PutS", 0, 0) in l1.l2.calls

    def test_eviction_reports_line_lost(self):
        l1 = make_l1(ways=1, sets=1)
        lost = []
        l1.on_line_lost = lost.append
        fill(l1, 0, MESI.MODIFIED)
        fill(l1, 64, MESI.SHARED)
        assert lost == [0]


class TestLogBit:
    def test_log_bit_lifecycle(self):
        l1 = make_l1()
        fill(l1, 0x40, MESI.MODIFIED)
        assert not l1.log_bit(0x40)
        l1.set_log_bit(0x40)
        assert l1.log_bit(0x40)
        l1.clear_log_bit(0x40)
        assert not l1.log_bit(0x40)

    def test_source_logged_fill_pre_sets_bit(self):
        l1 = make_l1()
        fill(l1, 0x40, MESI.MODIFIED, source_logged=True)
        assert l1.log_bit(0x40)

    def test_log_bit_dies_with_eviction(self):
        l1 = make_l1(ways=1, sets=1)
        fill(l1, 0, MESI.MODIFIED)
        l1.set_log_bit(0)
        fill(l1, 64, MESI.SHARED)
        assert not l1.log_bit(0)  # absent lines read as unlogged

    def test_absent_line_operations_are_safe(self):
        l1 = make_l1()
        assert not l1.log_bit(0x1000)
        l1.set_log_bit(0x1000)   # no-op
        l1.clear_log_bit(0x1000)


class TestRemoteActions:
    def test_remote_invalidate_reports_dirty(self):
        l1 = make_l1()
        fill(l1, 0x40, MESI.MODIFIED)
        assert l1.remote_invalidate(0x40) is True
        assert l1.probe(0x40) is None

    def test_remote_invalidate_clean(self):
        l1 = make_l1()
        fill(l1, 0x40, MESI.SHARED)
        assert l1.remote_invalidate(0x40) is False

    def test_remote_invalidate_absent(self):
        l1 = make_l1()
        assert l1.remote_invalidate(0x40) is False

    def test_remote_downgrade(self):
        l1 = make_l1()
        fill(l1, 0x40, MESI.MODIFIED)
        assert l1.remote_downgrade(0x40) is True
        assert l1.probe(0x40).state is MESI.SHARED

    def test_remote_invalidate_fires_line_lost(self):
        l1 = make_l1()
        lost = []
        l1.on_line_lost = lost.append
        fill(l1, 0x40, MESI.MODIFIED)
        l1.remote_invalidate(0x40)
        assert lost == [0x40]


class TestMSHRIntegration:
    def test_load_miss_merges(self):
        l1 = make_l1()
        done = []
        l1.load_miss(0x40, lambda: done.append(1))
        l1.load_miss(0x40, lambda: done.append(2))
        # One GetS, two waiters.
        gets = [c for c in l1.l2.calls if c[0] == "GetS"]
        assert len(gets) == 1
        from repro.coherence.l1 import FillInfo
        l1._fill(0x40, FillInfo(MESI.SHARED))
        assert done == [1, 2]
