"""Differential equivalence net for the batch-timing kernel paths.

The slot-batched channel arbiter, the inline write-space waiter drain,
the engine's one-slot bypass lane, and the coalesced streamed-send path
are only acceptable because they are **bit-for-bit identical** to the
reference (one event per slot, one posted wake-up per freed slot,
heap-only scheduling, one event per streamed message).  This net drives
randomized seeded request streams — including backpressure, priority
writes, in-flight tracking, and drain/crash interleavings — through
both implementations and requires identical completion times, identical
completion order, and identical statistics.

The reference implementations live here, in the test, frozen at the
pre-batching semantics (PR 4's kernel): they are the executable spec
the batched fast paths are judged against.
"""

from __future__ import annotations

import random

import pytest

from repro.common.stats import Stats
from repro.config import MemoryConfig
from repro.engine import Engine
from repro.engine.event import NEVER
from repro.mem.channel import AccessKind, Channel
from repro.noc.mesh import Mesh
from repro.noc.topology import Topology
from repro.config import NocConfig


# -- reference implementations (pre-batching semantics) -----------------------


class ReferenceEngine:
    """Heap-only engine: the scheduling semantics the lane must match.

    Deliberately re-implemented from the pre-lane engine: every
    handle-free post goes through the heap, dispatch order is pure
    ``(time, seq)``.
    """

    def __init__(self):
        import heapq

        self._heapq = heapq
        self.now = 0
        self._queue = []
        self._seq = 0
        self._stop = False

    def post(self, delay, fn):
        assert delay >= 0
        self._seq += 1
        self._heapq.heappush(self._queue, (self.now + delay, self._seq, fn))

    def post_at(self, time, fn):
        assert time >= self.now
        self._seq += 1
        self._heapq.heappush(self._queue, (time, self._seq, fn))

    # The reference channel calls these engine hooks too.
    def peek_time(self):
        return self._queue[0][0] if self._queue else NEVER

    def count_virtual(self, n=1):
        pass

    def call_soon(self, fn):
        self.post(0, fn)

    def stop(self):
        self._stop = True

    def run(self):
        heappop = self._heapq.heappop
        while self._queue and not self._stop:
            time, _seq, fn = heappop(self._queue)
            self.now = time
            fn()


class ReferenceChannel(Channel):
    """The pre-batching arbiter: one dispatched event per device slot,
    one posted wake-up per freed write slot."""

    def _issue_next(self):
        self._scheduled = False
        req = self._select()
        if req is None:
            return
        now = self.engine.now
        latency, bank_floor, add_bytes, is_read = self._kind_info[req.kind]
        ser = self._serialization_cycles(req.size)
        if bank_floor > ser:
            ser = bank_floor
        req.issue_time = now
        self._busy_until = now + ser
        self._add_busy(ser)
        add_bytes(req.size)
        self._add_queue_wait(now - req.enqueue_time)
        if req.on_done is not None:
            if is_read or not self.track_inflight_writes:
                self.engine.post_at(now + ser + latency, req.on_done)
            else:
                self._inflight_writes.append(req)
                self.engine.post_at(now + ser + latency,
                                    self._write_completion(req))
        if not is_read:
            if self._write_waiters:
                self.engine.post(0, self._write_waiters.popleft())
        if self._read_q or self._write_q:
            busy = self._busy_until
            self._scheduled = True
            self.engine.post_at(busy if busy > now else now,
                                self._issue_next)


# -- randomized stream driver -------------------------------------------------


def _mem_config() -> MemoryConfig:
    cfg = MemoryConfig()
    cfg.write_queue_depth = 4  # small: exercise backpressure often
    return cfg


def _drive(channel_cls, engine, seed: int, crash: str | None,
           track_inflight: bool):
    """Run one seeded random request stream; return the observed trace."""
    rng = random.Random(seed)
    stats = Stats().domain("ch")
    channel = channel_cls(engine, _mem_config(), stats, "ch")
    channel.track_inflight_writes = track_inflight
    trace = []

    def completion(tag):
        def done():
            trace.append((tag, engine.now))
        return done

    def submit_write(tag, kind, addr, size, priority):
        def attempt():
            if not channel.write(kind, addr, size, completion(tag),
                                 priority=priority):
                channel.when_write_space(attempt)
        attempt()

    kinds_w = [AccessKind.DATA_WRITE, AccessKind.LOG_WRITE]
    kinds_r = [AccessKind.DATA_READ, AccessKind.LOG_READ]
    n = 120
    for i in range(n):
        at = rng.randrange(0, 2_500)
        size = rng.choice([32, 64, 64, 64, 512])
        addr = rng.randrange(0, 1 << 20) & ~63
        if rng.random() < 0.55:
            kind = rng.choice(kinds_w)
            priority = rng.random() < 0.1
            engine.post_at(
                at, (lambda t=i, k=kind, a=addr, s=size, p=priority:
                     submit_write(t, k, a, s, p))
            )
        else:
            kind = rng.choice(kinds_r)
            engine.post_at(
                at, (lambda t=i, k=kind, a=addr, s=size:
                     channel.read(k, a, s, completion(t)))
            )
    if crash is not None:
        cut = rng.randrange(500, 2_000)

        def power_cut():
            engine.stop()
            if crash == "drop":
                trace.append(("dropped", channel.drop_pending()))
            else:
                trace.append(("drain-start", engine.now))
                trace.append(("drained", channel.drain_pending()))

        engine.post_at(cut, power_cut)
    engine.run()
    return trace, stats.as_dict(), channel._busy_until


@pytest.mark.parametrize("crash", [None, "drop", "drain"])
@pytest.mark.parametrize("track_inflight", [False, True])
def test_batched_channel_matches_reference(crash, track_inflight):
    """Completion times/order and stats are identical across 20 seeds."""
    for seed in range(20):
        ref = _drive(ReferenceChannel, ReferenceEngine(), seed, crash,
                     track_inflight)
        fast = _drive(Channel, Engine(), seed, crash, track_inflight)
        assert fast[0] == ref[0], (
            f"seed {seed} crash={crash} track={track_inflight}: "
            f"completion trace diverged\nref:  {ref[0]}\nfast: {fast[0]}"
        )
        assert fast[1] == ref[1], (
            f"seed {seed}: stats diverged\nref:  {ref[1]}\nfast: {fast[1]}"
        )
        assert fast[2] == ref[2], f"seed {seed}: busy_until diverged"


def test_batched_arbiter_actually_batches():
    """Sanity: an uncontended run of queued requests folds into one
    arbiter dispatch (virtual dispatches appear)."""
    engine = Engine()
    stats = Stats().domain("ch")
    channel = Channel(engine, _mem_config(), stats, "ch")
    done = []
    for i in range(3):
        engine.post_at(
            0, (lambda i=i: channel.read(AccessKind.DATA_READ, i * 64, 64,
                                         lambda i=i: done.append(i)))
        )
    engine.run()
    assert done == [0, 1, 2]
    assert engine.virtual_dispatches > 0


# -- engine bypass-lane equivalence -------------------------------------------


def _engine_script(engine, post, post_at, seed: int):
    """Seeded random scheduling storm; returns the dispatch trace."""
    rng = random.Random(seed)
    trace = []

    def make(tag, depth):
        def fn():
            trace.append((tag, engine.now))
            if depth < 3:
                for j in range(rng.randrange(0, 3)):
                    post(rng.randrange(0, 5), make((tag, j), depth + 1))
        return fn

    for i in range(40):
        if rng.random() < 0.5:
            post(rng.randrange(0, 50), make(i, 0))
        else:
            post_at(rng.randrange(0, 50), make(i, 0))
    return trace


@pytest.mark.parametrize("seed", range(12))
def test_lane_engine_matches_heap_engine(seed):
    """The bypass lane preserves exact (time, seq) dispatch order."""
    ref_engine = ReferenceEngine()
    ref = _engine_script(ref_engine, ref_engine.post, ref_engine.post_at,
                         seed)
    ref_engine.run()

    eng = Engine()
    fast = _engine_script(eng, eng.post, eng.post_at, seed)
    eng.run()
    assert fast == ref


# -- coalesced streamed sends -------------------------------------------------


@pytest.mark.parametrize("seed", range(8))
def test_streamed_batch_matches_individual_sends(seed):
    """send_streamed_batch == N send_streamed: arrivals, order, stats."""
    rng = random.Random(seed)
    deliveries = [
        (rng.randrange(0, 8), rng.randrange(0, 8),
         rng.choice([8, 64, 64, 128]))
        for _ in range(12)
    ]

    def run(batched: bool):
        engine = Engine()
        stats = Stats().domain("mesh")
        mesh = Mesh(engine, Topology(8, 4, NocConfig()), NocConfig(), stats)
        trace = []
        def receiver(tag):
            return lambda: trace.append((tag, engine.now))
        def kickoff():
            if batched:
                mesh.send_streamed_batch([
                    (src, dst, size, receiver(i))
                    for i, (src, dst, size) in enumerate(deliveries)
                ])
            else:
                for i, (src, dst, size) in enumerate(deliveries):
                    mesh.send_streamed(src, dst, size, receiver(i))
        engine.post_at(0, kickoff)
        engine.run()
        return trace, stats.as_dict()

    assert run(True) == run(False)
