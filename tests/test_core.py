"""Core model: op execution, atomic regions, SQ stalls, write-set flush."""

from helpers import build_system
from repro.config import Design
from repro.cpu import ops
from repro.runtime.api import PMem


def run_thread(system, gen, max_cycles=10_000_000):
    system.start_threads([gen])
    return system.run(max_cycles=max_cycles)


class TestBasicExecution:
    def test_compute_advances_time(self, system):
        def thread():
            yield ops.Compute(500)

        end = run_thread(system, thread())
        assert end >= 500

    def test_load_returns_bytes(self, system):
        system.image.write(0x100, b"abcdefgh")
        seen = []

        def thread():
            value = yield ops.Load(0x100, 8)
            seen.append(value)

        run_thread(system, thread())
        assert seen == [b"abcdefgh"]

    def test_store_applies_functionally(self, system):
        def thread():
            yield ops.Store(0x100, b"hello")

        run_thread(system, thread())
        assert system.image.read(0x100, 5) == b"hello"

    def test_load_sees_own_store(self, system):
        seen = []

        def thread():
            yield ops.Store(0x100, (77).to_bytes(8, "little"))
            value = yield from PMem.load_u64(0x100)
            seen.append(value)

        run_thread(system, thread())
        assert seen == [77]

    def test_multi_line_load(self, system):
        system.image.write(0x100, bytes(range(130 % 256)) if False else b"z" * 130)

        def thread():
            value = yield ops.Load(0x100, 130)
            assert value == b"z" * 130

        run_thread(system, thread())

    def test_multi_line_store_split(self, system):
        def thread():
            yield ops.Store(0x1000, b"q" * 512)

        run_thread(system, thread())
        system.drain()  # let the SQ tail finish after the thread ends
        assert system.image.read(0x1000, 512) == b"q" * 512
        assert system.cores[0].stats.get("stores_retired") == 8


class TestAtomicRegions:
    def test_commit_counts_and_hook(self, system):
        infos = []
        system.on_commit = lambda core, info: infos.append((core, info))

        def thread():
            yield ops.AtomicBegin()
            yield ops.Store(0x100, b"x" * 8)
            yield ops.AtomicEnd(info="tag")

        run_thread(system, thread())
        assert infos == [(0, "tag")]
        assert system.cores[0].stats.get("txns_committed") == 1

    def test_write_set_is_durable_after_commit(self, undo_system):
        system = undo_system

        def thread():
            yield ops.AtomicBegin()
            yield ops.Store(0x1000, b"d" * 128)
            yield ops.AtomicEnd()

        run_thread(system, thread())
        assert system.image.persist_equals_volatile(0x1000, 128)

    def test_nested_regions_flatten(self, system):
        def thread():
            yield ops.AtomicBegin()
            yield ops.AtomicBegin()
            yield ops.Store(0x100, b"y" * 8)
            yield ops.AtomicEnd()
            yield ops.Store(0x140, b"z" * 8)
            yield ops.AtomicEnd()

        run_thread(system, thread())
        # One commit (the outermost), both stores durable.
        assert system.cores[0].stats.get("txns_committed") == 1
        assert system.image.persist_equals_volatile(0x100, 8)
        assert system.image.persist_equals_volatile(0x140, 8)

    def test_first_write_logging_per_line(self, undo_system):
        system = undo_system

        def thread():
            yield ops.AtomicBegin()
            for word in range(8):  # 8 stores, one line
                yield ops.Store(0x1000 + word * 8, b"a" * 8)
            yield ops.AtomicEnd()

        run_thread(system, thread())
        entries = system.stats.total("entries", prefix="logm")
        assert entries == 1, "one line modified => one undo entry"

    def test_non_atomic_design_logs_nothing(self):
        system = build_system(design=Design.NON_ATOMIC)

        def thread():
            yield ops.AtomicBegin()
            yield ops.Store(0x1000, b"b" * 64)
            yield ops.AtomicEnd()

        run_thread(system, thread())
        assert system.stats.total("entries", prefix="logm") == 0
        assert system.image.persist_equals_volatile(0x1000, 64)


class TestStoreQueuePressure:
    def test_sq_full_cycles_accrue_under_base(self):
        system = build_system(design=Design.BASE)

        def thread():
            yield ops.AtomicBegin()
            # Many distinct lines: every store logs and waits durably.
            for i in range(64):
                yield ops.Store(0x4000 + i * 64, b"c" * 64)
            yield ops.AtomicEnd()

        run_thread(system, thread())
        assert system.cores[0].stats.get("sq_full_cycles") > 0

    def test_base_slower_than_non_atomic(self):
        def thread():
            yield ops.AtomicBegin()
            for i in range(64):
                yield ops.Store(0x4000 + i * 64, b"c" * 64)
            yield ops.AtomicEnd()

        times = {}
        for design in (Design.BASE, Design.NON_ATOMIC):
            system = build_system(design=design)
            times[design] = run_thread(system, thread())
        assert times[Design.BASE] > times[Design.NON_ATOMIC], times


class TestExplicitFlush:
    def test_flush_op_persists_line(self, system):
        def thread():
            yield ops.Store(0x2000, b"f" * 64)
            yield ops.Flush(0x2000)

        run_thread(system, thread())
        assert system.image.persist_equals_volatile(0x2000, 64)


class TestLocksInThreads:
    def test_critical_sections_serialize(self):
        system = build_system(num_cores=4)
        order = []

        def thread(tid):
            yield from PMem.lock(1)
            order.append(("in", tid))
            yield ops.Compute(100)
            order.append(("out", tid))
            yield from PMem.unlock(1)

        system.start_threads([thread(t) for t in range(4)])
        system.run(max_cycles=10_000_000)
        # No interleaving inside the critical section.
        for i in range(0, 8, 2):
            assert order[i][0] == "in" and order[i + 1][0] == "out"
            assert order[i][1] == order[i + 1][1]
