"""Campaign layer: cache behaviour, pool fan-out, seeds, crash sweep."""

from __future__ import annotations

import json
import os
import pickle
import time

import pytest

from repro.config import Design
from repro.harness.cache import (
    ResultCache, canonicalize, payload_digest, spec_key,
)
from repro.harness.campaign import (
    Campaign,
    CampaignError,
    CrashSpec,
    WorkerPool,
    _run_worker,
    aggregate_results,
    crash_grid,
    crash_sweep,
    result_from_dict,
    result_to_dict,
)
from repro.harness.experiments import run_experiment
from repro.harness.runner import RunSpec, run_spec

TINY = RunSpec(
    design=Design.ATOM_OPT, workload="hash", num_cores=4,
    txns_per_thread=4, warmup_per_thread=1, initial_items=8,
)


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestSpecKey:
    def test_stable_across_calls(self):
        assert spec_key(TINY) == spec_key(TINY)

    def test_any_field_change_changes_the_key(self):
        baseline = spec_key(TINY)
        variants = [
            TINY.with_design(Design.BASE),
            TINY.with_seed(99),
            RunSpec(**{**TINY.__dict__, "txns_per_thread": 5}),
            RunSpec(**{**TINY.__dict__, "workload_kw": {"compute_cycles": 9}}),
            RunSpec(**{**TINY.__dict__, "log_overrides": {"collation": False}}),
        ]
        keys = {spec_key(v) for v in variants}
        assert baseline not in keys
        assert len(keys) == len(variants)

    def test_kind_separates_run_and_crash_namespaces(self):
        assert spec_key(TINY, kind="run") != spec_key(TINY, kind="crash")

    def test_canonicalize_sorts_dicts_and_unwraps_enums(self):
        assert canonicalize({"b": 2, "a": Design.REDO}) == \
            {"a": "redo", "b": 2}
        with pytest.raises(TypeError):
            canonicalize(object())


class TestResultCache:
    def test_get_miss_then_put_then_hit(self, cache):
        assert cache.get("ab" * 32) is None
        cache.put("ab" * 32, {"x": 1})
        assert cache.get("ab" * 32) == {"x": 1}
        assert cache.hits == 1 and cache.misses == 1

    def test_corrupt_entry_reads_as_miss_and_is_removed(self, cache):
        key = "cd" * 32
        cache.put(key, {"x": 1})
        cache.path_for(key).write_text("{not json")
        assert cache.get(key) is None
        assert not cache.path_for(key).exists()

    def test_wipe(self, cache):
        cache.put("ab" * 32, {"x": 1})
        cache.put("cd" * 32, {"y": 2})
        assert cache.wipe() == 2
        assert cache.count() == 0

    def test_checksum_mismatch_reads_as_miss_and_is_removed(self, cache):
        key = "ef" * 32
        cache.put(key, {"x": 1})
        path = cache.path_for(key)
        # A valid envelope whose digest does not match its payload:
        # silent bit-rot, not a torn write.
        path.write_text(json.dumps(
            {"sha256": payload_digest({"x": 2}), "payload": {"x": 1}}
        ))
        assert cache.get(key) is None
        assert not path.exists()

    def test_old_format_entry_reads_as_miss(self, cache):
        key = "aa" * 32
        cache.put(key, {"x": 1})
        cache.path_for(key).write_text(json.dumps({"x": 1}))
        assert cache.get(key) is None

    def test_stale_tmps_reaped_on_init(self, tmp_path):
        root = tmp_path / "cache"
        stale = root / "ab" / "entry.json.tmp.123"
        fresh = root / "ab" / "entry.json.tmp.456"
        stale.parent.mkdir(parents=True)
        stale.write_text("{}")
        fresh.write_text("{}")
        past = time.time() - 7200
        os.utime(stale, (past, past))
        ResultCache(root)
        assert not stale.exists()
        assert fresh.exists()  # could belong to a live writer

    def test_put_failure_degrades_to_cache_off(self, tmp_path, capsys):
        # The cache root is a plain file, so put()'s mkdir hits OSError
        # — which must degrade the cache, not crash the campaign.
        root = tmp_path / "cache"
        root.write_text("not a directory")
        cache = ResultCache(root)
        cache.put("cd" * 32, {"y": 2})
        assert cache.disabled
        assert "cache disabled" in capsys.readouterr().err
        assert cache.get("cd" * 32) is None
        cache.put("ef" * 32, {"z": 3})  # degraded: silent no-op
        assert "cache disabled" not in capsys.readouterr().err

    def test_put_tmp_files_never_linger(self, cache):
        cache.put("ab" * 32, {"x": 1})
        assert not list(cache.root.rglob("*.tmp.*"))


class TestCampaignCache:
    def test_miss_then_hit_returns_identical_result(self, cache):
        campaign = Campaign(jobs=1, cache=cache)
        cold = campaign.run_one(TINY)
        assert campaign.computed == 1
        warm = campaign.run_one(TINY)
        assert campaign.computed == 1  # no recomputation
        assert cache.hits == 1
        assert result_to_dict(cold) == result_to_dict(warm)

    def test_spec_change_invalidates(self, cache):
        campaign = Campaign(jobs=1, cache=cache)
        campaign.run_one(TINY)
        campaign.run_one(RunSpec(**{**TINY.__dict__, "txns_per_thread": 5}))
        assert campaign.computed == 2

    def test_duplicate_specs_in_one_batch_compute_once(self, cache):
        campaign = Campaign(jobs=1, cache=cache)
        a, b = campaign.run([TINY, TINY])
        assert campaign.computed == 1
        assert result_to_dict(a) == result_to_dict(b)

    def test_warm_rerun_is_fast(self, cache):
        """Acceptance: a warm-cache re-run takes <10% of the cold run."""
        campaign = Campaign(jobs=1, cache=cache)
        start = time.perf_counter()
        campaign.run_one(TINY)
        cold = time.perf_counter() - start
        start = time.perf_counter()
        campaign.run_one(TINY)
        warm = time.perf_counter() - start
        assert warm < 0.1 * cold

    def test_result_round_trip(self):
        result = run_spec(TINY)
        assert result_to_dict(result_from_dict(result_to_dict(result))) \
            == result_to_dict(result)


class TestCampaignPool:
    def test_worker_failure_propagates_not_hangs(self):
        campaign = Campaign(jobs=2, cache=None)
        with pytest.raises(CampaignError, match="unknown workload"):
            campaign.run([TINY, RunSpec(design=Design.ATOM_OPT,
                                        workload="no-such-workload")])

    def test_inline_failure_propagates_too(self):
        campaign = Campaign(jobs=1, cache=None)
        with pytest.raises(CampaignError):
            campaign.run([RunSpec(design=Design.ATOM_OPT,
                                  workload="no-such-workload")])

    def test_pool_matches_serial_on_one_experiment(self):
        """Acceptance: --jobs N produces the serial path's exact values."""
        serial = run_experiment("fig8", scale=0.2,
                                campaign=Campaign(jobs=1, cache=None))
        parallel = run_experiment("fig8", scale=0.2,
                                  campaign=Campaign(jobs=4, cache=None))
        assert serial.measured == parallel.measured
        assert serial.rows == parallel.rows

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Campaign(jobs=-1)
        with pytest.raises(ValueError):
            Campaign(seeds=0)

    def test_pool_persists_across_batches(self):
        """The tentpole contract: one fork, reused for every batch —
        the same worker processes serve consecutive campaign batches."""
        campaign = Campaign(jobs=2, cache=None)
        try:
            campaign.run([TINY, TINY.with_seed(101)])
            pids_first = sorted(p.pid for p in campaign._pool._procs)
            campaign.run([TINY.with_seed(102), TINY.with_seed(103)])
            pids_second = sorted(p.pid for p in campaign._pool._procs)
            assert pids_first == pids_second
            assert all(p.is_alive() for p in campaign._pool._procs)
        finally:
            campaign.close()

    def test_pool_results_preserve_submission_order(self):
        campaign = Campaign(jobs=2, cache=None)
        try:
            seeds = [201, 202, 203, 204, 205]
            results = campaign.run([TINY.with_seed(s) for s in seeds])
            assert [r.spec.seed for r in results] == seeds
        finally:
            campaign.close()

    def test_close_is_idempotent_and_pool_rebuilds(self):
        campaign = Campaign(jobs=2, cache=None)
        campaign.run([TINY, TINY.with_seed(301)])
        campaign.close()
        campaign.close()
        # A batch after close transparently forks a fresh pool.
        results = campaign.run([TINY.with_seed(302), TINY.with_seed(303)])
        assert len(results) == 2
        campaign.close()


class TestPoolLifecycle:
    """Edge cases of the supervised pool's own lifecycle."""

    def test_double_close_is_safe(self):
        # close() is atexit-registered, so an explicit close followed by
        # the interpreter-exit close must be a no-op, not an error.
        pool = WorkerPool(2)
        pool.map([TINY], _run_worker, kind="run")
        pool.close()
        pool.close()
        assert len(pool) == 0

    def test_close_with_tasks_still_queued_returns_promptly(self):
        pool = WorkerPool(1)
        frame = pickle.dumps((0, 0, _run_worker, TINY),
                             protocol=pickle.HIGHEST_PROTOCOL)
        procs = pool._procs
        pool._workers[0].conn.send_bytes(frame)
        start = time.monotonic()
        pool.close()  # must not wait for the in-flight task's reply
        assert time.monotonic() - start < 10.0
        for proc in procs:
            assert not proc.is_alive()

    def test_map_after_close_raises(self):
        pool = WorkerPool(1)
        pool.close()
        with pytest.raises(CampaignError, match="already closed"):
            pool.map([TINY], _run_worker, kind="run")

    def test_shutdown_sentinel_exits_workers_cleanly(self):
        pool = WorkerPool(2)
        procs = pool._procs
        pool.close()
        assert all(proc.exitcode == 0 for proc in procs)


class TestSeeds:
    def test_run_replicated_distinct_seeds(self, cache):
        campaign = Campaign(jobs=1, cache=cache)
        rep = campaign.run_replicated(TINY, seeds=3)
        assert rep.seeds == 3
        assert {r.spec.seed for r in rep.results} == \
            {TINY.seed, TINY.seed + 1, TINY.seed + 2}
        mean, ci = rep.metric(lambda r: r.throughput)
        assert mean == pytest.approx(rep.throughput_mean)
        assert ci >= 0.0

    def test_seeds_aggregation_annotates_stats(self, cache):
        campaign = Campaign(jobs=1, seeds=2, cache=cache)
        result = campaign.run_one(TINY)
        assert result.stats["campaign"]["seeds"] == 2
        assert len(result.stats["campaign"]["throughputs"]) == 2

    def test_aggregate_single_result_is_identity(self):
        result = run_spec(TINY)
        assert aggregate_results([result]) is result


class TestCrashSweep:
    def test_grid_enumerates_full_product(self):
        specs = crash_grid(designs=[Design.ATOM], workloads=["hash", "sps"],
                           crash_cycles=[1000, 2000], seeds=[1, 2, 3])
        assert len(specs) == 1 * 2 * 2 * 3

    def test_small_sweep_all_points_consistent(self, cache):
        campaign = Campaign(jobs=1, cache=cache)
        specs = crash_grid(
            designs=[Design.ATOM_OPT, Design.REDO],
            workloads=["hash"],
            crash_cycles=[6_000, 14_000],
        )
        sweep = crash_sweep(campaign, specs)
        assert sweep.failures == []
        assert len(sweep.outcomes) == 4
        assert "0 failures" in sweep.render()

    def test_sweep_outcomes_cache(self, cache):
        campaign = Campaign(jobs=1, cache=cache)
        specs = [CrashSpec(design=Design.ATOM_OPT, workload="hash",
                           crash_cycle=8_000)]
        campaign.run_crash(specs)
        computed = campaign.computed
        again = campaign.run_crash(specs)
        assert campaign.computed == computed
        assert again[0].ok

    def test_crash_cycle_beyond_completion_rolls_back_nothing(self):
        campaign = Campaign(jobs=1, cache=None)
        outcome = campaign.run_crash([
            CrashSpec(design=Design.ATOM_OPT, workload="hash",
                      crash_cycle=25_000_000)
        ])[0]
        assert outcome.ok
        assert outcome.commits == 4 * 8
        assert outcome.updates_rolled_back == 0
