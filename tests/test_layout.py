"""Physical address layout: interleaving, log regions, record math."""

import pytest

from repro.common.errors import MemoryError_
from repro.config import LogConfig, MemoryConfig
from repro.mem.layout import AddressLayout, RecordAddress


def make_layout(data_mb: int = 4) -> AddressLayout:
    return AddressLayout(data_mb * 1024 * 1024, MemoryConfig(), LogConfig())


class TestDataSpace:
    def test_page_interleaving(self):
        layout = make_layout()
        page = layout.interleave_bytes
        assert layout.controller_of(0) == 0
        assert layout.controller_of(page) == 1
        assert layout.controller_of(2 * page) == 2
        assert layout.controller_of(3 * page) == 3
        assert layout.controller_of(4 * page) == 0

    def test_same_page_same_controller(self):
        layout = make_layout()
        assert layout.controller_of(100) == layout.controller_of(4000)

    def test_is_data_vs_is_log(self):
        layout = make_layout()
        assert layout.is_data(0)
        assert not layout.is_log(0)
        assert layout.is_log(layout.log_base)
        assert not layout.is_data(layout.log_base)

    def test_out_of_range_rejected(self):
        layout = make_layout()
        with pytest.raises(MemoryError_):
            layout.controller_of(layout.total_bytes)


class TestLogRegions:
    def test_regions_are_disjoint_and_ordered(self):
        layout = make_layout()
        bases = [layout.log_region_base(c) for c in range(4)]
        assert bases == sorted(bases)
        for c in range(3):
            assert bases[c + 1] - bases[c] == layout.log_region_bytes

    def test_log_addresses_map_to_owner(self):
        layout = make_layout()
        for c in range(4):
            assert layout.controller_of(layout.log_region_base(c)) == c
            last = layout.log_region_base(c) + layout.log_region_bytes - 1
            assert layout.controller_of(last) == c

    def test_adr_block_precedes_buckets(self):
        layout = make_layout()
        assert layout.adr_base(0) == layout.log_region_base(0)
        assert layout.bucket_base(0, 0) == (
            layout.log_region_base(0) + layout.adr_block_bytes
        )

    def test_adr_block_is_line_aligned(self):
        layout = make_layout()
        assert layout.adr_block_bytes % 64 == 0


class TestRecordMath:
    def test_record_size_is_512(self):
        layout = make_layout()
        r0 = layout.record_base(RecordAddress(0, 0, 0))
        r1 = layout.record_base(RecordAddress(0, 0, 1))
        assert r1 - r0 == 512

    def test_header_is_last_line(self):
        layout = make_layout()
        rec = RecordAddress(1, 2, 3)
        header = layout.record_header_addr(rec)
        assert header == layout.record_base(rec) + 7 * 64

    def test_entry_slots(self):
        layout = make_layout()
        rec = RecordAddress(0, 0, 0)
        for slot in range(7):
            addr = layout.record_entry_addr(rec, slot)
            assert addr == layout.record_base(rec) + slot * 64
        with pytest.raises(MemoryError_):
            layout.record_entry_addr(rec, 7)

    def test_bucket_bounds_checked(self):
        layout = make_layout()
        with pytest.raises(MemoryError_):
            layout.bucket_base(0, LogConfig().buckets_per_controller)

    def test_records_stay_inside_their_bucket(self):
        layout = make_layout()
        cfg = LogConfig()
        last = RecordAddress(0, 0, cfg.records_per_bucket - 1)
        end = layout.record_header_addr(last) + 64
        assert end <= layout.bucket_base(0, 1)
