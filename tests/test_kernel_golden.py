"""Golden-digest equivalence net for the simulation kernel.

The kernel fast path (tuple-heap engine, precomputed NoC tables, bound
stat counters, workload op inlining) is only acceptable because it is
**bit-for-bit identical** to the reference kernel: same cycle counts,
same committed-transaction counts, same statistics, for every design.
This test pins that contract to golden values captured from the
pre-optimization kernel (commit 0a2763a) — any future "perf" change
that silently shifts timing or stats fails loudly here.

Regenerating the goldens is a deliberate act (it redefines the
reference semantics):

    PYTHONPATH=src python tests/test_kernel_golden.py --regen
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.config import Design
from repro.harness.testbed import build_system, run_workload_to_completion
from repro.workloads import make_workload

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_kernel.json"


def golden_run(design: Design, traced: bool = False):
    """One pinned small run per design (fixed seed, fixed machine).

    With ``traced=True`` the full observability layer (lifecycle tracer
    + stat sampler) rides along — the goldens must stay bit-identical,
    which is the tracer's non-perturbation contract.
    """
    system = build_system(design=design, num_cores=4)
    if traced:
        from repro.obs.sample import StatSampler
        from repro.obs.trace import Tracer

        Tracer().install(system)
        StatSampler(system, interval=500).install()
    workload = make_workload(
        "hash", system, entry_bytes=256, txns_per_thread=6,
        initial_items=12, seed=11, threads=4,
    )
    run_workload_to_completion(system, workload)
    result = system.result()
    return {
        "cycles": result.cycles,
        "txns_committed": result.txns_committed,
        "stats": result.stats,
    }


@pytest.fixture(scope="module")
def golden() -> dict:
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("traced", [False, True],
                         ids=["plain", "traced"])
@pytest.mark.parametrize("design", list(Design), ids=lambda d: d.value)
class TestKernelGolden:
    def test_run_matches_golden(self, design, traced, golden):
        measured = golden_run(design, traced=traced)
        reference = golden[design.value]
        assert measured["cycles"] == reference["cycles"], (
            f"{design.value}: finish cycle drifted "
            f"({measured['cycles']} vs golden {reference['cycles']})"
        )
        assert measured["txns_committed"] == reference["txns_committed"]
        # The full stats dict, counter for counter: a kernel change that
        # alters *any* accounting shows up here with the exact domain.
        for domain, counters in reference["stats"].items():
            assert measured["stats"].get(domain) == counters, (
                f"{design.value}: stats domain {domain!r} diverged: "
                f"{measured['stats'].get(domain)} vs {counters}"
            )
        assert set(measured["stats"]) == set(reference["stats"])


def test_goldens_cover_every_design(golden):
    assert set(golden) == {design.value for design in Design}


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        data = {
            design.value: golden_run(design) for design in Design
        }
        GOLDEN_PATH.write_text(
            json.dumps(data, indent=1, sort_keys=True) + "\n"
        )
        print(f"regenerated {GOLDEN_PATH}")
    else:
        print(__doc__)
