"""Lock manager: mutual exclusion, FIFO fairness, timing."""

import pytest

from helpers import build_system
from repro.common.errors import SimulationError


def make_lockmgr():
    system = build_system()
    return system.engine, system.lockmgr


class TestMutualExclusion:
    def test_free_lock_granted(self):
        engine, locks = make_lockmgr()
        granted = []
        locks.acquire(0, 77, lambda: granted.append(0))
        engine.run(max_events=1000)
        assert granted == [0]
        assert locks.holder(77) == 0

    def test_contended_lock_queues(self):
        # Simultaneous requests race to the lock's home tile (the closer
        # core arrives first); the loser queues and is granted on
        # release — mutual exclusion throughout.
        engine, locks = make_lockmgr()
        granted = []
        locks.acquire(0, 77, lambda: granted.append(0))
        locks.acquire(1, 77, lambda: granted.append(1))
        engine.run(max_events=1000)
        assert len(granted) == 1
        first = granted[0]
        locks.release(first, 77)
        engine.run(max_events=1000)
        assert sorted(granted) == [0, 1]
        assert locks.holder(77) == granted[1]

    def test_queued_requests_grant_fifo(self):
        engine, locks = make_lockmgr()
        granted = []
        for core in range(4):
            locks.acquire(core, 5, lambda c=core: granted.append(c))
        engine.run(max_events=1000)
        queue_order = list(granted)
        while len(granted) < 4:
            locks.release(granted[-1], 5)
            engine.run(max_events=1000)
        # Whatever the arrival race decided, everyone is granted exactly
        # once and queued waiters come out in arrival order.
        assert sorted(granted) == [0, 1, 2, 3]
        assert granted[: len(queue_order)] == queue_order

    def test_release_by_non_holder_rejected(self):
        engine, locks = make_lockmgr()
        locks.acquire(0, 9, lambda: None)
        engine.run(max_events=1000)
        with pytest.raises(SimulationError):
            locks.release(3, 9)

    def test_independent_locks_do_not_interact(self):
        engine, locks = make_lockmgr()
        granted = []
        locks.acquire(0, 1, lambda: granted.append("a"))
        locks.acquire(1, 2, lambda: granted.append("b"))
        engine.run(max_events=1000)
        assert sorted(granted) == ["a", "b"]

    def test_held_locks_listing(self):
        engine, locks = make_lockmgr()
        locks.acquire(2, 10, lambda: None)
        locks.acquire(2, 11, lambda: None)
        engine.run(max_events=1000)
        assert sorted(locks.held_locks(2)) == [10, 11]


class TestTiming:
    def test_acquire_costs_a_round_trip(self):
        engine, locks = make_lockmgr()
        granted = []
        locks.acquire(0, 77, lambda: granted.append(engine.now))
        engine.run(max_events=1000)
        assert granted[0] > 0

    def test_wait_cycles_recorded(self):
        engine, locks = make_lockmgr()
        granted = []
        locks.acquire(0, 77, lambda: granted.append(0))
        locks.acquire(1, 77, lambda: granted.append(1))
        engine.run(max_events=1000)
        locks.release(granted[0], 77)
        engine.run(max_events=1000)
        assert locks.stats.get("lock_wait_cycles") > 0
