"""Shared helpers for the test suite (importable as ``helpers``).

The actual builders live in :mod:`repro.harness.testbed` so that the
benchmark fixtures and the campaign crash sweep construct machines
through the very same code path as the unit tests — configs cannot
silently drift between the suites.
"""

from __future__ import annotations

from repro.harness.testbed import (  # noqa: F401 — re-exported
    build_system,
    crash_run,
    run_workload_to_completion,
    small_config,
)

__all__ = [
    "build_system",
    "crash_run",
    "run_workload_to_completion",
    "small_config",
]
