"""Shared helpers for the test suite (importable as ``helpers``)."""

from __future__ import annotations

from repro.config import Design, SystemConfig
from repro.runtime.system import System


def small_config(design: Design = Design.ATOM_OPT, num_cores: int = 4,
                 **kw) -> SystemConfig:
    """A 4-core scaled-down machine with invariant checking enabled."""
    cfg = SystemConfig.scaled_down(design=design, num_cores=num_cores, **kw)
    cfg.debug.check_invariants = True
    return cfg


def build_system(design: Design = Design.ATOM_OPT, num_cores: int = 4,
                 **kw) -> System:
    """Build a small system ready for tests."""
    return System(small_config(design, num_cores, **kw))


def run_workload_to_completion(system, workload, max_cycles=50_000_000):
    """Setup + run a workload; returns the finish cycle."""
    workload.setup()
    system.start_threads(workload.threads())
    return system.run(max_cycles=max_cycles)
