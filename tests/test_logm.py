"""LogM module: collation, posting, gating, truncation, overflow."""

import pytest

from helpers import build_system
from repro.common.errors import LogOverflowError
from repro.common.units import CACHE_LINE_BYTES
from repro.config import Design, LogConfig
from repro.mem.layout import RecordAddress


def fresh_logm(system, core=0, slot=0):
    logm = system.controllers[0].logm
    logm.begin(core, slot)
    return logm


def payload(tag: int) -> bytes:
    return bytes([tag]) * CACHE_LINE_BYTES


class TestAppend:
    def test_posted_ack_fires_before_persist(self, system):
        logm = fresh_logm(system)
        events = []
        logm.append(0, 0x1000, payload(1),
                    on_locked=lambda: events.append(("locked",
                                                     system.engine.now)))
        assert events and events[0][0] == "locked"
        assert events[0][1] == system.engine.now  # synchronous lock
        assert logm.is_locked(0x1000)

    def test_durable_ack_requires_header_persist(self, system):
        logm = fresh_logm(system)
        events = []
        # Fill a whole record so the header goes out.
        for i in range(7):
            logm.append(0, 0x1000 + i * 64, payload(i),
                        on_durable=lambda i=i: events.append(i))
        assert not events  # nothing durable yet
        system.engine.run(max_events=100_000)
        assert events == list(range(7))

    def test_lines_unlock_on_header_persist(self, system):
        logm = fresh_logm(system)
        for i in range(7):
            logm.append(0, 0x1000 + i * 64, payload(i))
        assert logm.is_locked(0x1000)
        system.engine.run(max_events=100_000)
        assert not logm.is_locked(0x1000)

    def test_append_without_update_is_noop_ack(self, system):
        logm = system.controllers[0].logm
        acked = []
        logm.append(9, 0x2000, payload(0), on_locked=lambda: acked.append(1))
        assert acked == [1]
        assert not logm.is_locked(0x2000)

    def test_relog_same_line_counts_locks(self, system):
        """A line logged twice stays locked until *both* entries persist."""
        logm = fresh_logm(system)
        logm.append(0, 0x1000, payload(1))
        logm.append(0, 0x1000, payload(2))
        # Force both records' headers out by filling the record.
        for i in range(1, 7):
            logm.append(0, 0x8000 + i * 64, payload(i))
        system.engine.run(max_events=200_000)
        assert not logm.is_locked(0x1000)

    def test_log_entries_land_in_log_region(self, system):
        logm = fresh_logm(system)
        logm.append(0, 0x1000, payload(0xAB))
        for i in range(1, 7):
            logm.append(0, 0x9000 + i * 64, payload(i))
        system.engine.run(max_events=200_000)
        base = system.layout.record_entry_addr(RecordAddress(0, 0, 0), 0)
        assert system.image.durable_read(base, 64) == payload(0xAB)


class TestGate:
    def test_unlocked_write_released_after_match_cycle(self, system):
        logm = system.controllers[0].logm
        released = []
        logm.gate_data_write(0x4000, lambda: released.append(system.engine.now))
        system.engine.run(max_events=1000)
        assert released

    def test_locked_write_waits_for_header(self, system):
        logm = fresh_logm(system)
        logm.append(0, 0x1000, payload(1))
        released = []
        logm.gate_data_write(0x1000, lambda: released.append(1))
        assert not released  # header not persisted yet
        system.engine.run(max_events=100_000)
        assert released == [1]

    def test_gate_forces_early_header_flush(self, system):
        logm = fresh_logm(system)
        logm.append(0, 0x1000, payload(1))  # record has 1 of 7 entries
        logm.gate_data_write(0x1000, lambda: None)
        system.engine.run(max_events=100_000)
        assert logm.stats.get("early_header_flushes") >= 1


class TestCommit:
    def test_commit_truncates_and_acks(self, system):
        logm = fresh_logm(system)
        logm.append(0, 0x1000, payload(1))
        acked = []
        logm.commit(0, lambda: acked.append(1))
        system.engine.run(max_events=100_000)
        assert acked == [1]
        assert logm.slot_of(0) is None
        assert not logm.aus[0].active()

    def test_commit_notifies_truncation_hook(self, system):
        logm = fresh_logm(system)
        seen = []
        logm.on_truncate = seen.append
        logm.commit(0, lambda: None)
        assert seen == [0]

    def test_force_truncate_is_idempotent(self, system):
        logm = fresh_logm(system)
        logm.append(0, 0x1000, payload(1))
        logm.force_truncate(0)
        logm.force_truncate(0)
        assert not logm.aus[0].active()


class TestCollationModes:
    def test_base_design_closes_per_entry(self):
        system = build_system(design=Design.BASE)
        logm = system.controllers[0].logm
        assert not logm.cfg.collation
        logm.begin(0, 0)
        logm.append(0, 0x1000, payload(1))
        system.engine.run(max_events=100_000)
        # One entry => one closed record, header written immediately.
        assert logm.stats.get("records_closed") == 1
        assert logm.stats.get("headers_written") == 1

    def test_collation_amortizes_headers(self, system):
        logm = fresh_logm(system)
        for i in range(7):
            logm.append(0, 0x1000 + i * 64, payload(i))
        system.engine.run(max_events=200_000)
        assert logm.stats.get("headers_written") == 1
        assert logm.stats.get("entries") == 7


class TestOverflow:
    def test_single_update_exhaustion_raises(self):
        system = build_system()
        logm = system.controllers[0].logm
        logm.cfg = LogConfig(
            buckets_per_controller=logm.cfg.buckets_per_controller,
            records_per_bucket=logm.cfg.records_per_bucket,
            aus_per_controller=logm.cfg.aus_per_controller,
        )
        logm.begin(0, 0)
        capacity = (
            logm.cfg.buckets_per_controller * logm.cfg.records_per_bucket
            * logm.cfg.entries_per_record
        )
        with pytest.raises(LogOverflowError):
            for i in range(capacity + 8):
                logm.append(0, 0x10000 + i * 64, payload(i & 0xFF))

    def test_waiters_retry_after_commit_frees_buckets(self, system):
        logm = system.controllers[0].logm
        buckets = logm.cfg.buckets_per_controller
        per_bucket = logm.cfg.records_per_bucket * logm.cfg.entries_per_record
        logm.begin(0, 0)
        logm.begin(1, 1)
        # Update 0 grabs all buckets bar one; update 1 takes the last.
        for i in range((buckets - 1) * per_bucket):
            logm.append(0, 0x100000 + i * 64, payload(i & 0xFF))
        for i in range(per_bucket):
            logm.append(1, 0x400000 + i * 64, payload(i & 0xFF))
        # Update 1 now overflows; progress resumes once update 0 commits.
        acked = []
        logm.append(1, 0x500000, payload(1), on_locked=lambda: acked.append(1))
        assert not acked
        assert logm.stats.get("log_overflows") >= 1
        logm.commit(0, lambda: None)
        system.engine.run(max_events=500_000)
        assert acked == [1]
