"""REDO victim cache."""

from repro.coherence.victim import VictimCache
from repro.common.stats import Stats


def make_victim(capacity=None):
    return VictimCache(capacity, Stats().domain("victim"))


class TestParking:
    def test_park_and_hold(self):
        victim = make_victim()
        assert victim.park(0x40, txn_id=1) == []
        assert victim.holds(0x40)
        assert victim.occupancy() == 1

    def test_repark_updates_txn(self):
        victim = make_victim()
        victim.park(0x40, txn_id=1)
        victim.park(0x40, txn_id=2)
        assert victim.occupancy() == 1
        assert victim.release_txn(1) == []
        assert victim.release_txn(2) == [0x40]

    def test_release_frees_only_matching_txn(self):
        victim = make_victim()
        victim.park(0x00, 1)
        victim.park(0x40, 2)
        victim.park(0x80, 1)
        freed = victim.release_txn(1)
        assert sorted(freed) == [0x00, 0x80]
        assert victim.holds(0x40)

    def test_infinite_capacity_never_spills(self):
        victim = make_victim(capacity=None)
        spilled = []
        for i in range(1000):
            spilled += victim.park(i * 64, txn_id=i)
        assert spilled == []
        assert victim.occupancy() == 1000

    def test_finite_capacity_spills_fifo(self):
        victim = make_victim(capacity=2)
        victim.park(0x00, 1)
        victim.park(0x40, 1)
        spilled = victim.park(0x80, 1)
        assert spilled == [0x00]
        assert not victim.holds(0x00)

    def test_drop_all_on_crash(self):
        victim = make_victim()
        victim.park(0x40, 1)
        victim.drop_all()
        assert victim.occupancy() == 0
