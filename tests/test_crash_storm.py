"""Crash-storm recovery: interrupted recovery must converge.

The storm keeps crashing the machine *during recovery* (seeded,
geometrically growing write budgets — :mod:`repro.faults.storm`) and
the durable image must still converge to exactly the state one
uninterrupted recovery would have produced.  The net below drives a
100-point matrix — every design x two workloads x two crash cycles x
(one uninterrupted baseline + four storm seeds) — and checks, for every
storm point, that

* the storm reached a recovery fixpoint (one more full pass is a
  no-op), and
* its durable digest equals the uninterrupted baseline's.

Per-point interruption counts cannot be demanded (a design whose
recovery writes almost nothing completes inside even the smallest
budget), so the net tallies them and asserts the storm as a whole
actually interrupted recoveries.
"""

import pytest

from repro.config import Design
from repro.faults.storm import storm_budget, storm_recover
from repro.harness.testbed import build_system, crash_run
from repro.workloads import make_workload

STORM_SEEDS = (1, 2, 3, 4)

#: design x workload x crash-cycle — 20 combinations, 5 points each.
NET = [
    (design, workload, cycle)
    for design in Design
    for workload in ("hash", "queue")
    for cycle in (2_500, 6_000)
]

# Tallied by the parametrized net, asserted once at the end of the file
# (skipped when the net did not run, e.g. under a -k selection).
_INTERRUPTIONS = {"points": 0, "interrupted_attempts": 0}


class TestStormBudget:
    def test_deterministic(self):
        for seed in range(8):
            for attempt in range(6):
                assert storm_budget(seed, attempt) == \
                    storm_budget(seed, attempt)

    def test_base_in_range_and_growth_geometric(self):
        for seed in range(16):
            assert 1 <= storm_budget(seed, 0) <= 4
            for attempt in range(1, 10):
                budget = storm_budget(seed, attempt)
                assert (1 << attempt) <= budget <= (4 << attempt)

    def test_seeds_vary_the_schedule(self):
        schedules = {
            tuple(storm_budget(seed, a) for a in range(6))
            for seed in range(16)
        }
        # 4^6 possible schedules; 16 seeds collapsing to a handful would
        # mean the derivation barely depends on the seed.
        assert len(schedules) > 8


def _crashed_system(design=Design.ATOM, cycle=6_000):
    """A machine run to ``cycle`` and crashed, recovery not yet run."""
    system = build_system(design=design)
    workload = make_workload("hash", system, threads=4, txns_per_thread=8,
                             initial_items=12, seed=7)
    workload.setup()
    system.start_threads(workload.threads())
    system.crash_at(cycle)
    system.run(max_cycles=30_000_000)
    if not system.crashed:
        system.crash()
    return system


class TestBudgetedRecovery:
    def test_tiny_budget_interrupts_then_full_pass_completes(self):
        system = _crashed_system()
        report = system.recover(write_budget=1)
        assert report.interrupted
        full = system.recover()
        assert not full.interrupted
        # And the budgeted prefix did not poison the final state: yet
        # another pass changes nothing.
        digest = system.image.durable_digest()
        system.recover()
        assert system.image.durable_digest() == digest

    def test_huge_budget_never_interrupts(self):
        system = _crashed_system()
        report = system.recover(write_budget=10_000_000)
        assert not report.interrupted

    def test_storm_report_shape(self):
        system = _crashed_system()
        storm = storm_recover(system, seed=3)
        assert storm.fixpoint
        # No backstop pass expected with geometric budgets.
        assert storm.attempts == storm.interrupted_attempts + 1
        assert storm.budgets == [
            storm_budget(3, a) for a in range(storm.attempts)
        ]
        assert not storm.report.interrupted
        assert storm.digest == system.image.durable_digest()
        payload = storm.to_dict()
        assert payload["seed"] == 3
        assert payload["fixpoint"] is True
        assert payload["attempts"] == storm.attempts

    def test_storm_is_deterministic_per_seed(self):
        a = storm_recover(_crashed_system(), seed=5)
        b = storm_recover(_crashed_system(), seed=5)
        assert a.budgets == b.budgets
        assert a.attempts == b.attempts
        assert a.digest == b.digest


@pytest.mark.parametrize(
    "design,workload,cycle", NET,
    ids=[f"{d.value}-{w}-{c}" for d, w, c in NET],
)
def test_storm_converges_to_the_uninterrupted_state(design, workload, cycle):
    # Baseline: same machine, same crash, one uninterrupted recovery.
    # verify=False: the net's check is digest equality, which binds for
    # every design — including non-atomic, whose durable structure is
    # *expected* to fail the golden differential check after a crash.
    base_system, _, base_report = crash_run(workload, design, cycle,
                                            verify=False)
    assert not base_report.interrupted
    baseline = base_system.image.durable_digest()
    for seed in STORM_SEEDS:
        system, _, report = crash_run(workload, design, cycle,
                                      verify=False, storm_seed=seed)
        storm = report.storm
        assert storm.fixpoint, (
            f"storm seed={seed} did not reach a recovery fixpoint "
            f"({storm.attempts} attempts)"
        )
        assert storm.digest == baseline, (
            f"storm seed={seed} converged to a different durable state "
            f"than uninterrupted recovery"
        )
        assert not storm.report.interrupted
        _INTERRUPTIONS["points"] += 1
        _INTERRUPTIONS["interrupted_attempts"] += storm.interrupted_attempts


def test_the_net_actually_interrupted_recoveries():
    if _INTERRUPTIONS["points"] == 0:
        pytest.skip("storm net did not run in this session")
    # 20 combinations x 4 storm seeds ran ...
    assert _INTERRUPTIONS["points"] == len(NET) * len(STORM_SEEDS)
    # ... and the storm was not vacuous: recoveries really were cut
    # short mid-pass somewhere in the matrix.
    assert _INTERRUPTIONS["interrupted_attempts"] > 0
